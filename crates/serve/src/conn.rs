//! Connection tracking and the per-connection protocol loop.
//!
//! Every accepted socket is handled on a thread registered in a
//! [`ConnRegistry`]; shutdown joins them all, so no connection thread
//! outlives the server (the first service cut leaked detached threads).
//! The protocol loop frames request lines with [`crate::framing::LineReader`],
//! which is what makes slow writers safe: a read-timeout tick checks the
//! stop flag and otherwise *keeps* any partial request bytes buffered.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::framing::{Frame, LineReader};
use crate::server::{handle_line, Shared};

/// How often an idle connection wakes to check the stop flag. This is the
/// socket read timeout, not a poll of shared state: the thread sleeps in
/// `recv` and the kernel wakes it on data; the tick only bounds how long
/// shutdown waits for idle connections.
pub(crate) const READ_TICK: Duration = Duration::from_millis(100);

#[derive(Debug, Default)]
struct RegistryInner {
    /// Threads still running (or not yet observed finished).
    live: HashMap<u64, JoinHandle<()>>,
    /// Threads that announced completion; joined in bulk at shutdown.
    finished: Vec<JoinHandle<()>>,
    /// Completions that raced ahead of their own registration.
    early_retired: Vec<u64>,
    next_id: u64,
}

/// Registry of connection-handler threads: tracks the live count for
/// `serve.conn_active` and keeps every `JoinHandle` so shutdown can join
/// them all.
#[derive(Debug, Default)]
pub(crate) struct ConnRegistry {
    inner: Mutex<RegistryInner>,
}

impl ConnRegistry {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Spawn a connection thread and track it. `shared` is used for the
    /// `serve.conn_active` gauge and `serve.conn_opened`/`closed` counters.
    pub(crate) fn spawn_connection(self: &Arc<Self>, stream: TcpStream, shared: Arc<Shared>) {
        let registry = Arc::clone(self);
        let mut inner = self.inner.lock().expect("conn registry lock");
        let id = inner.next_id;
        inner.next_id += 1;
        shared.obs.inc_by("serve.conn_opened", &[], 1);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("vnet-serve-conn-{id}"))
            .spawn(move || {
                run_connection(stream, &conn_shared);
                conn_shared.obs.inc_by("serve.conn_closed", &[], 1);
                registry.retire(id, &conn_shared);
            })
            .expect("spawn connection thread");
        // If the connection already finished (tiny requests race the
        // registration), its id is parked in `early_retired`.
        if let Some(pos) = inner.early_retired.iter().position(|&e| e == id) {
            inner.early_retired.swap_remove(pos);
            inner.finished.push(handle);
        } else {
            inner.live.insert(id, handle);
        }
        let live = inner.live.len();
        drop(inner);
        shared.obs.set_gauge("serve.conn_active", &[], live as f64);
    }

    fn retire(&self, id: u64, shared: &Shared) {
        let mut inner = self.inner.lock().expect("conn registry lock");
        match inner.live.remove(&id) {
            Some(handle) => inner.finished.push(handle),
            None => inner.early_retired.push(id),
        }
        let live = inner.live.len();
        drop(inner);
        shared.obs.set_gauge("serve.conn_active", &[], live as f64);
    }

    /// Join every connection thread, live ones included — callers must
    /// have set the stop flag first so live threads exit at their next
    /// read tick. Never called from a connection thread (the accept loop
    /// runs it), so there is no self-join.
    pub(crate) fn join_all(&self) {
        loop {
            let handle = {
                let mut inner = self.inner.lock().expect("conn registry lock");
                inner.finished.pop().or_else(|| {
                    let id = inner.live.keys().next().copied();
                    id.and_then(|id| inner.live.remove(&id))
                })
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => return,
            }
        }
    }
}

/// The per-connection protocol loop: frame lines, dispatch, reply.
fn run_connection(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream);
    loop {
        match reader.next_frame() {
            Ok(Frame::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let (reply, stop_after) = handle_line(shared, &line);
                if writer.write_all(reply.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
                if stop_after {
                    return;
                }
            }
            // A timeout tick: partial request bytes stay buffered in the
            // reader; only a full stop ends the connection.
            Ok(Frame::Idle) => {
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(Frame::Closed) | Err(_) => return,
        }
    }
}
