//! Content-addressed result cache for the analysis service.
//!
//! Keys are `(dataset fingerprint, options fingerprint, section, day)` —
//! the complete provenance of a section payload, since every section is a
//! pure function of those four (the thread count never affects a result
//! bit and is excluded from the options fingerprint on purpose; `day` is
//! the churn timeline day for `as_of` requests, `None` for the base
//! snapshot). Values are the serialized payload plus its FNV fingerprint,
//! so a cache hit replays the exact bytes a cold computation produced.
//!
//! The key is built from the *parsed, canonicalized* request — key order,
//! whitespace, and envelope generation of the incoming JSON line cannot
//! cause a spurious miss (regression-tested in `serve_asof.rs`).
//!
//! Eviction is least-recently-used over a logical access clock, bounded
//! by a fixed entry capacity. The cache itself does no locking — the
//! server wraps it in a `Mutex` and keeps compute *outside* the critical
//! section.

use std::collections::HashMap;
use std::sync::Arc;
use verified_net::Section;

/// Full provenance of one cached section payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`verified_net::Dataset::fingerprint`] of the snapshot.
    pub dataset: u64,
    /// [`verified_net::AnalysisOptions::fingerprint`] of the request
    /// options (thread count excluded).
    pub options: u64,
    /// The section computed.
    pub section: Section,
    /// Churn timeline day for `as_of` requests; `None` = base snapshot.
    /// Part of the key so each materialized day caches independently.
    pub day: Option<u32>,
}

/// One cached section payload: the exact serialized bytes plus their
/// fingerprint (the same digest batch runs record as `section.<id>`).
#[derive(Debug, PartialEq, Eq)]
pub struct CachedSection {
    /// Serialized `SectionReport` JSON, byte-identical to a fresh run.
    pub payload_json: String,
    /// FNV-1a fingerprint of `payload_json`.
    pub fingerprint: u64,
}

struct Entry {
    value: Arc<CachedSection>,
    last_used: u64,
}

/// Bounded LRU cache of section results.
pub struct ResultCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<CacheKey, Entry>,
}

impl ResultCache {
    /// A cache holding at most `capacity` section payloads. Capacity 0
    /// disables caching (every insert is dropped immediately).
    pub fn new(capacity: usize) -> Self {
        Self { capacity, clock: 0, entries: HashMap::new() }
    }

    /// Look up a payload, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedSection>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.value)
        })
    }

    /// Insert a payload, evicting least-recently-used entries to stay
    /// within capacity. Returns how many entries were evicted.
    pub fn insert(&mut self, key: CacheKey, value: Arc<CachedSection>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.clock += 1;
        self.entries.insert(key, Entry { value, last_used: self.clock });
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            // The access clock is strictly increasing, so the minimum is
            // unique and eviction order is deterministic.
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty over capacity");
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    /// Number of cached payloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ds: u64, sec: Section) -> CacheKey {
        CacheKey { dataset: ds, options: 1, section: sec, day: None }
    }

    fn val(s: &str) -> Arc<CachedSection> {
        Arc::new(CachedSection { payload_json: s.to_string(), fingerprint: 0 })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.insert(key(1, Section::Basic), val("a")), 0);
        assert_eq!(c.insert(key(2, Section::Basic), val("b")), 0);
        // Touch the first entry so the second becomes LRU.
        assert!(c.get(&key(1, Section::Basic)).is_some());
        assert_eq!(c.insert(key(3, Section::Basic), val("c")), 1);
        assert!(c.get(&key(2, Section::Basic)).is_none(), "LRU entry survived");
        assert!(c.get(&key(1, Section::Basic)).is_some());
        assert!(c.get(&key(3, Section::Basic)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn distinct_sections_are_distinct_keys() {
        let mut c = ResultCache::new(8);
        c.insert(key(1, Section::Basic), val("basic"));
        c.insert(key(1, Section::Degrees), val("degrees"));
        assert_eq!(c.get(&key(1, Section::Basic)).unwrap().payload_json, "basic");
        assert_eq!(c.get(&key(1, Section::Degrees)).unwrap().payload_json, "degrees");
    }

    #[test]
    fn distinct_days_are_distinct_keys() {
        let mut c = ResultCache::new(8);
        c.insert(key(1, Section::Basic), val("base"));
        c.insert(CacheKey { day: Some(3), ..key(1, Section::Basic) }, val("day3"));
        assert_eq!(c.get(&key(1, Section::Basic)).unwrap().payload_json, "base");
        let d3 = CacheKey { day: Some(3), ..key(1, Section::Basic) };
        assert_eq!(c.get(&d3).unwrap().payload_json, "day3");
        assert!(c.get(&CacheKey { day: Some(4), ..key(1, Section::Basic) }).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        assert_eq!(c.insert(key(1, Section::Basic), val("a")), 0);
        assert!(c.is_empty());
        assert!(c.get(&key(1, Section::Basic)).is_none());
    }
}
