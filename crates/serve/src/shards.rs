//! The sharded snapshot registry.
//!
//! Every registered snapshot name is a **shard**: its own bounded-queue
//! worker-pool [`Executor`], its own LRU [`ResultCache`], and its own
//! single-flight [`FlightMap`]. Work for one snapshot therefore queues,
//! caches, and coalesces entirely inside its shard — a hot snapshot can
//! saturate its own queue (`queue_full` for *its* clients) without
//! starving requests to any other snapshot, which is the isolation
//! property `tests/tests/serve_shards.rs` pins.
//!
//! Re-registering a name swaps the dataset inside the existing shard and
//! keeps its pools warm; stale cache entries age out by LRU because cache
//! keys carry the dataset fingerprint. Compute parallelism (the
//! `ParPool` inside the shared `AnalysisCtx`) stays server-wide: the
//! fork-join pool is scoped per call, so concurrent shards never block
//! each other there — the scarce resources a shard isolates are queue
//! slots and worker threads.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use verified_net::{Dataset, VnetError};
use vnet_graph::NodeId;
use vnet_obs::Obs;
use vnet_synth::PlantedLabels;
use vnet_temporal::Timeline;

use crate::cache::{CachedSection, ResultCache};
use crate::executor::{Executor, ExecutorTelemetry};
use crate::flight::FlightMap;
use crate::stats::{ServeStats, ShardStats};

/// Materialized day-graphs kept hot per temporal shard. Small on purpose:
/// each entry is a full CSR + profiles clone; the section cache above it
/// is what absorbs repeat traffic.
const DAY_CACHE_CAPACITY: usize = 4;

/// Per-shard resource bounds, fixed at registration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardLimits {
    /// Worker threads in the shard's executor.
    pub(crate) workers: usize,
    /// Waiting slots in the executor's bounded queue.
    pub(crate) queue_depth: usize,
    /// LRU result-cache entries.
    pub(crate) cache_capacity: usize,
}

/// The swappable dataset inside a shard.
pub(crate) struct SnapshotData {
    pub(crate) dataset: Dataset,
    pub(crate) fingerprint: u64,
}

/// Rendered `detect` payloads kept per sybil shard, keyed `(day, top_k)`.
/// Detection replays the full pipeline over every node, so even a tiny
/// LRU absorbs the repeat traffic of a day-sweep.
const DETECT_CACHE_CAPACITY: usize = 8;

/// The adversarial side of a shard: the planted ground truth and the
/// per-day follow attribution the detection pipeline consumes. Present
/// only when the snapshot was registered with `sybil:true` (which in turn
/// requires `churn_days`, so this always lives inside a
/// [`TemporalState`]).
pub(crate) struct SybilState {
    /// Which node ids are planted fakes (and who bought them).
    pub(crate) labels: PlantedLabels,
    /// `daily_follows[d]` = the `(source, target)` follow events of churn
    /// day `d + 1`, in event order — the burst scorer's attribution.
    pub(crate) daily_follows: Vec<Vec<(NodeId, NodeId)>>,
    cache: Mutex<Vec<((u32, usize), Arc<CachedSection>, u64)>>,
    clock: Mutex<u64>,
}

impl SybilState {
    pub(crate) fn new(
        labels: PlantedLabels,
        daily_follows: Vec<Vec<(NodeId, NodeId)>>,
    ) -> Self {
        Self { labels, daily_follows, cache: Mutex::new(Vec::new()), clock: Mutex::new(0) }
    }

    fn tick(&self) -> u64 {
        let mut clock = self.clock.lock().expect("detect clock lock");
        *clock += 1;
        *clock
    }

    /// Cached rendered payload for `(day, top_k)`, marking it
    /// most-recently-used on a hit.
    pub(crate) fn cached(&self, day: u32, top_k: usize) -> Option<Arc<CachedSection>> {
        let tick = self.tick();
        let mut cache = self.cache.lock().expect("detect cache lock");
        cache.iter_mut().find(|(k, _, _)| *k == (day, top_k)).map(|entry| {
            entry.2 = tick;
            Arc::clone(&entry.1)
        })
    }

    /// Insert a rendered payload, evicting the least-recently-used entry
    /// past capacity. A concurrent insert of the same key keeps the first
    /// copy (detection is deterministic, the bytes are identical).
    pub(crate) fn insert(&self, day: u32, top_k: usize, value: Arc<CachedSection>) {
        let tick = self.tick();
        let mut cache = self.cache.lock().expect("detect cache lock");
        if let Some(entry) = cache.iter_mut().find(|(k, _, _)| *k == (day, top_k)) {
            entry.2 = tick;
            return;
        }
        cache.push(((day, top_k), value, tick));
        if cache.len() > DETECT_CACHE_CAPACITY {
            let oldest = cache
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
                .expect("non-empty over capacity");
            cache.swap_remove(oldest);
        }
    }
}

/// The temporal side of a shard: the churn [`Timeline`] built at
/// registration plus a tiny LRU of materialized day-datasets. Present only
/// when the snapshot was registered with `churn_days`.
pub(crate) struct TemporalState {
    pub(crate) timeline: Timeline,
    /// Churn master seed (reported in `status`).
    pub(crate) seed: u64,
    /// Planted sybil workload, when registered with `sybil:true`.
    pub(crate) sybil: Option<Arc<SybilState>>,
    day_cache: Mutex<Vec<(u32, Arc<SnapshotData>, u64)>>,
    day_clock: Mutex<u64>,
}

impl TemporalState {
    pub(crate) fn new(timeline: Timeline, seed: u64) -> Self {
        Self {
            timeline,
            seed,
            sybil: None,
            day_cache: Mutex::new(Vec::new()),
            day_clock: Mutex::new(0),
        }
    }

    /// Attach the planted workload's ground truth and attribution.
    pub(crate) fn with_sybil(mut self, state: SybilState) -> Self {
        self.sybil = Some(Arc::new(state));
        self
    }

    /// The dataset as of end of churn `day`: the base snapshot with its
    /// graph replaced by the timeline's materialization. Returns the data
    /// plus whether a fresh materialization was required (`true` = the
    /// day-cache missed and a replay ran).
    pub(crate) fn day_data(
        &self,
        day: u32,
        base: &SnapshotData,
    ) -> Result<(Arc<SnapshotData>, bool), VnetError> {
        let tick = {
            let mut clock = self.day_clock.lock().expect("day clock lock");
            *clock += 1;
            *clock
        };
        {
            let mut cache = self.day_cache.lock().expect("day cache lock");
            if let Some(entry) = cache.iter_mut().find(|(d, _, _)| *d == day) {
                entry.2 = tick;
                return Ok((Arc::clone(&entry.1), false));
            }
        }
        // Materialize outside the cache lock: replays take milliseconds
        // and concurrent requests for *different* days shouldn't serialize.
        let graph = self
            .timeline
            .graph_as_of(day)
            .map_err(VnetError::InvalidInput)?;
        let dataset = Dataset { graph, ..base.dataset.clone() };
        let fingerprint = dataset.fingerprint();
        let data = Arc::new(SnapshotData { dataset, fingerprint });
        let mut cache = self.day_cache.lock().expect("day cache lock");
        if let Some(entry) = cache.iter_mut().find(|(d, _, _)| *d == day) {
            // A concurrent materialization of the same day won the race;
            // serve its copy so all readers share one allocation.
            entry.2 = tick;
            return Ok((Arc::clone(&entry.1), true));
        }
        cache.push((day, Arc::clone(&data), tick));
        if cache.len() > DAY_CACHE_CAPACITY {
            let oldest = cache
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
                .expect("non-empty over capacity");
            cache.swap_remove(oldest);
        }
        Ok((data, true))
    }
}

/// One snapshot's serving resources.
pub(crate) struct Shard {
    pub(crate) name: String,
    data: Mutex<Arc<SnapshotData>>,
    temporal: Mutex<Option<Arc<TemporalState>>>,
    pub(crate) executor: Executor,
    pub(crate) cache: Mutex<ResultCache>,
    pub(crate) flights: Arc<FlightMap>,
    /// This shard's labelled hot-path counters (interned once here; the
    /// request path records through them lock-free).
    pub(crate) stats: ShardStats,
}

impl Shard {
    fn new(
        name: &str,
        dataset: Dataset,
        limits: ShardLimits,
        obs: Arc<Obs>,
        stats: &ServeStats,
    ) -> Self {
        let fingerprint = dataset.fingerprint();
        let exec_telemetry = ExecutorTelemetry::new(Arc::clone(&stats.telemetry), name);
        Self {
            name: name.to_string(),
            data: Mutex::new(Arc::new(SnapshotData { dataset, fingerprint })),
            temporal: Mutex::new(None),
            executor: Executor::new(limits.workers, limits.queue_depth, obs, name, exec_telemetry),
            cache: Mutex::new(ResultCache::new(limits.cache_capacity)),
            flights: Arc::new(FlightMap::new()),
            stats: stats.shard_stats(name),
        }
    }

    /// The shard's current dataset (an `Arc` snapshot: a concurrent
    /// re-register cannot swap a dataset out from under a running job).
    pub(crate) fn data(&self) -> Arc<SnapshotData> {
        Arc::clone(&self.data.lock().expect("shard data lock"))
    }

    fn swap_data(&self, dataset: Dataset) -> u64 {
        let fingerprint = dataset.fingerprint();
        *self.data.lock().expect("shard data lock") =
            Arc::new(SnapshotData { dataset, fingerprint });
        fingerprint
    }

    /// The shard's temporal state, when it was registered with churn.
    pub(crate) fn temporal(&self) -> Option<Arc<TemporalState>> {
        self.temporal.lock().expect("shard temporal lock").clone()
    }

    fn set_temporal(&self, state: Option<TemporalState>) {
        *self.temporal.lock().expect("shard temporal lock") = state.map(Arc::new);
    }
}

/// Name → shard map. Shards are created at registration and live until
/// server shutdown (their executors are drained and joined there).
#[derive(Default)]
pub(crate) struct ShardRegistry {
    shards: Mutex<BTreeMap<String, Arc<Shard>>>,
}

impl ShardRegistry {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Register (or refresh) `name`, returning the dataset fingerprint.
    /// First registration builds the shard's executor/cache/flights;
    /// re-registration swaps the dataset and keeps the pools warm.
    pub(crate) fn register(
        &self,
        name: &str,
        dataset: Dataset,
        temporal: Option<TemporalState>,
        limits: ShardLimits,
        obs: &Arc<Obs>,
        stats: &ServeStats,
    ) -> u64 {
        let mut shards = self.shards.lock().expect("shard registry lock");
        if let Some(shard) = shards.get(name) {
            let fingerprint = shard.swap_data(dataset);
            shard.set_temporal(temporal);
            return fingerprint;
        }
        let shard = Arc::new(Shard::new(name, dataset, limits, Arc::clone(obs), stats));
        shard.set_temporal(temporal);
        let fingerprint = shard.data().fingerprint;
        shards.insert(name.to_string(), Arc::clone(&shard));
        obs.set_counter("serve.snapshots", &[], shards.len() as u64);
        fingerprint
    }

    /// Look up one shard.
    pub(crate) fn get(&self, name: &str) -> Option<Arc<Shard>> {
        self.shards.lock().expect("shard registry lock").get(name).cloned()
    }

    /// Every shard, in name order (BTreeMap: deterministic iteration for
    /// status replies and shutdown).
    pub(crate) fn all(&self) -> Vec<Arc<Shard>> {
        self.shards.lock().expect("shard registry lock").values().cloned().collect()
    }

    /// Registered snapshot names, sorted.
    pub(crate) fn names(&self) -> Vec<String> {
        self.shards.lock().expect("shard registry lock").keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verified_net::{AnalysisCtx, SynthesisConfig};

    fn dataset() -> Dataset {
        Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet())
    }

    const LIMITS: ShardLimits =
        ShardLimits { workers: 1, queue_depth: 1, cache_capacity: 4 };

    fn stats() -> ServeStats {
        ServeStats::new(Arc::new(vnet_obs::Telemetry::new(2)))
    }

    #[test]
    fn register_creates_then_refreshes_one_shard() {
        let registry = ShardRegistry::new();
        let obs = Arc::new(Obs::new());
        let stats = stats();
        let ds = dataset();
        let fp = registry.register("a", ds.clone(), None, LIMITS, &obs, &stats);
        assert_eq!(fp, ds.fingerprint());
        assert_eq!(registry.names(), vec!["a".to_string()]);
        let shard = registry.get("a").expect("shard exists");

        // Warm the cache, then re-register: the shard object (and its
        // cache) survives, only the dataset handle is swapped.
        shard.cache.lock().expect("cache").insert(
            crate::cache::CacheKey {
                dataset: fp,
                options: 1,
                section: verified_net::Section::Basic,
                day: None,
            },
            Arc::new(crate::cache::CachedSection {
                payload_json: "{}".to_string(),
                fingerprint: 0,
            }),
        );
        let fp2 = registry.register("a", ds.clone(), None, LIMITS, &obs, &stats);
        assert_eq!(fp2, fp);
        let again = registry.get("a").expect("shard exists");
        assert!(Arc::ptr_eq(&shard, &again), "re-register rebuilt the shard");
        assert_eq!(again.cache.lock().expect("cache").len(), 1, "cache was dropped");
        assert_eq!(obs.metrics().counter("serve.snapshots", &[]), 1);

        // Shutdown the executor so its worker threads are joined.
        shard.executor.shutdown_and_join(String::new);
    }

    #[test]
    fn shards_are_isolated_objects() {
        let registry = ShardRegistry::new();
        let obs = Arc::new(Obs::new());
        let stats = stats();
        let ds = dataset();
        registry.register("a", ds.clone(), None, LIMITS, &obs, &stats);
        registry.register("b", ds, None, LIMITS, &obs, &stats);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        let a = registry.get("a").expect("a");
        let b = registry.get("b").expect("b");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.data().fingerprint, b.data().fingerprint, "same dataset");
        assert_eq!(obs.metrics().counter("serve.snapshots", &[]), 2);
        assert!(registry.get("c").is_none());
        for shard in registry.all() {
            shard.executor.shutdown_and_join(String::new);
        }
    }
}
