//! Wire protocol: line-delimited JSON requests and replies.
//!
//! Each request is one JSON object on one line with a `"cmd"` key; each
//! reply is one JSON object on one line with an `"ok"` key. Parsing is
//! strict about what it needs and silent about extra keys, so the
//! protocol can grow compatibly.

use serde_json::Value;
use verified_net::{AnalysisOptions, Section, VnetError};

/// Where a `register` request gets its dataset from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterSource {
    /// Load a saved bundle (`verified_net::save_dataset` layout).
    Dir(String),
    /// Synthesize at a named scale (`"small"` or `"default"`).
    Scale(String),
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Register a dataset snapshot under a name.
    Register {
        /// Snapshot name for later `analyze` calls.
        name: String,
        /// Bundle directory or synthesis scale.
        source: RegisterSource,
    },
    /// Compute (or serve from cache) one or more sections of a snapshot.
    Analyze {
        /// A previously registered snapshot name.
        snapshot: String,
        /// Sections to compute, in reply order.
        sections: Vec<Section>,
        /// Result-affecting knobs; defaults to [`AnalysisOptions::quick`].
        options: AnalysisOptions,
        /// Admission-control identity (the optional `client` field).
        /// Requests without one share the anonymous bucket (`""`).
        client: String,
    },
    /// Report snapshots, in-flight work, and lifecycle state; with a
    /// `snapshot` field, just that shard's detail.
    Status {
        /// Restrict the reply to one shard.
        snapshot: Option<String>,
    },
    /// Dump the server's metric counters; with a `snapshot` field, only
    /// the series labelled `{shard=<name>}`.
    Metrics {
        /// Restrict the reply to one shard's labelled series.
        snapshot: Option<String>,
        /// Reply encoding (the optional `format` field).
        format: MetricsFormat,
    },
    /// Stream periodic metric-delta frames over this connection (the
    /// first streaming surface of the protocol).
    Watch {
        /// Restrict the frames to one shard's labelled series.
        snapshot: Option<String>,
        /// Milliseconds between delta frames.
        interval_ms: u64,
        /// Number of delta frames before `watch_complete`.
        frames: u64,
    },
    /// Drain in-flight work, then stop accepting connections.
    Shutdown,
}

/// How a `metrics` reply is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The PR-2 contract: one JSON object with `counters` and `gauges`
    /// maps (the default).
    #[default]
    Json,
    /// Prometheus text exposition, JSON-escaped into a `body` field so
    /// the reply stays one line.
    Prom,
}

/// Bounds on `watch` parameters: a floor under the interval so a client
/// cannot turn the server into a busy-loop broadcaster, and a cap on
/// frames so a session always terminates.
pub const WATCH_MIN_INTERVAL_MS: u64 = 10;
/// Upper bound on `interval_ms` (a frame an hour apart is a leak, not a
/// subscription).
pub const WATCH_MAX_INTERVAL_MS: u64 = 60_000;
/// Upper bound on requested frames per watch session.
pub const WATCH_MAX_FRAMES: u64 = 100_000;

fn required_str(v: &Value, key: &str, cmd: &str) -> Result<String, VnetError> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| VnetError::BadRequest(format!("'{cmd}' needs a string '{key}' field")))
}

/// Parse the optional `options` object of an `analyze` request.
///
/// Starts from the `preset` (`"quick"`, the default, or `"default"` for
/// the full-cost battery) and overrides any numeric knob given by name.
fn parse_options(v: &Value) -> Result<AnalysisOptions, VnetError> {
    let base = match v["preset"].as_str() {
        None | Some("quick") => AnalysisOptions::quick(),
        Some("default") => AnalysisOptions::default(),
        Some(other) => {
            return Err(VnetError::BadRequest(format!(
                "unknown options preset '{other}' (quick|default)"
            )))
        }
    };
    let mut b = base.to_builder();
    if let Some(n) = v["seed"].as_u64() {
        b = b.seed(n);
    }
    if let Some(n) = v["threads"].as_u64() {
        b = b.threads(n as usize);
    }
    if let Some(n) = v["bootstrap_reps"].as_u64() {
        b = b.bootstrap_reps(n as usize);
    }
    if let Some(n) = v["clustering_samples"].as_u64() {
        b = b.clustering_samples(n as usize);
    }
    if let Some(n) = v["distance_sources"].as_u64() {
        b = b.distance_sources(n as usize);
    }
    if let Some(n) = v["betweenness_pivots"].as_u64() {
        b = b.betweenness_pivots(n as usize);
    }
    if let Some(n) = v["eigen_k"].as_u64() {
        b = b.eigen_k(n as usize);
    }
    if let Some(n) = v["lanczos_steps"].as_u64() {
        b = b.lanczos_steps(n as usize);
    }
    if let Some(n) = v["lag_cap"].as_u64() {
        b = b.lag_cap(n as usize);
    }
    if let Some(n) = v["ngram_rows"].as_u64() {
        b = b.ngram_rows(n as usize);
    }
    if let Some(n) = v["fig1_bins"].as_u64() {
        b = b.fig1_bins(n as usize);
    }
    Ok(b.build())
}

/// Parse one request line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, VnetError> {
    let v: Value = serde_json::from_str(line.trim())
        .map_err(|e| VnetError::BadRequest(format!("request is not valid JSON: {e}")))?;
    let cmd = v["cmd"]
        .as_str()
        .ok_or_else(|| VnetError::BadRequest("request needs a string 'cmd' field".into()))?;
    match cmd {
        "register" => {
            let name = required_str(&v, "name", "register")?;
            let source = if let Some(dir) = v["dir"].as_str() {
                RegisterSource::Dir(dir.to_string())
            } else if let Some(scale) = v["scale"].as_str() {
                match scale {
                    "small" | "default" => RegisterSource::Scale(scale.to_string()),
                    other => {
                        return Err(VnetError::BadRequest(format!(
                            "unknown scale '{other}' (small|default)"
                        )))
                    }
                }
            } else {
                return Err(VnetError::BadRequest(
                    "'register' needs a 'dir' or 'scale' field".into(),
                ));
            };
            Ok(Request::Register { name, source })
        }
        "analyze" => {
            let snapshot = required_str(&v, "snapshot", "analyze")?;
            let mut sections = Vec::new();
            let list = &v["sections"];
            let mut i = 0;
            while !list[i].is_null() {
                let id = list[i].as_str().ok_or_else(|| {
                    VnetError::BadRequest("'sections' must be an array of section ids".into())
                })?;
                sections.push(id.parse::<Section>()?);
                i += 1;
            }
            if sections.is_empty() {
                return Err(VnetError::BadRequest(
                    "'analyze' needs a non-empty 'sections' array".into(),
                ));
            }
            let options = parse_options(&v["options"])?;
            let client = v["client"].as_str().unwrap_or("").to_string();
            Ok(Request::Analyze { snapshot, sections, options, client })
        }
        "status" => Ok(Request::Status { snapshot: v["snapshot"].as_str().map(str::to_string) }),
        "metrics" => {
            let format = match v["format"].as_str() {
                None | Some("json") => MetricsFormat::Json,
                Some("prom") => MetricsFormat::Prom,
                Some(other) => {
                    return Err(VnetError::BadRequest(format!(
                        "unknown metrics format '{other}' (json|prom)"
                    )))
                }
            };
            Ok(Request::Metrics { snapshot: v["snapshot"].as_str().map(str::to_string), format })
        }
        "watch" => {
            let interval_ms = v["interval_ms"].as_u64().unwrap_or(1_000);
            if !(WATCH_MIN_INTERVAL_MS..=WATCH_MAX_INTERVAL_MS).contains(&interval_ms) {
                return Err(VnetError::BadRequest(format!(
                    "'watch' interval_ms must be in [{WATCH_MIN_INTERVAL_MS}, {WATCH_MAX_INTERVAL_MS}]"
                )));
            }
            let frames = v["frames"].as_u64().unwrap_or(5);
            if !(1..=WATCH_MAX_FRAMES).contains(&frames) {
                return Err(VnetError::BadRequest(format!(
                    "'watch' frames must be in [1, {WATCH_MAX_FRAMES}]"
                )));
            }
            Ok(Request::Watch {
                snapshot: v["snapshot"].as_str().map(str::to_string),
                interval_ms,
                frames,
            })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(VnetError::BadRequest(format!("unknown cmd '{other}'"))),
    }
}

/// Serialize an error as a structured protocol reply. `rate_limited`
/// carries its retry hint as a machine-readable `retry_after_ms` field
/// next to the message — the serving-side analogue of a `Retry-After`
/// header, deterministic under the admission clock (golden-tested in
/// `tests/tests/serve_admission.rs`).
pub(crate) fn error_reply(e: &VnetError) -> String {
    if let VnetError::RateLimited { retry_after_ms } = e {
        return format!(
            "{{\"ok\":false,\"error\":{{\"code\":\"rate_limited\",\"message\":{},\"retry_after_ms\":{}}}}}",
            json_str(&e.to_string()),
            retry_after_ms,
        );
    }
    format!(
        "{{\"ok\":false,\"error\":{{\"code\":{},\"message\":{}}}}}",
        json_str(e.code()),
        json_str(&e.to_string()),
    )
}

/// JSON-escape a string through the serializer (one escaping policy
/// everywhere, so replies stay byte-stable).
pub(crate) fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("strings serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_register_and_analyze() {
        let r = parse_request(r#"{"cmd":"register","name":"a","dir":"/tmp/x"}"#).unwrap();
        match r {
            Request::Register { name, source } => {
                assert_eq!(name, "a");
                assert_eq!(source, RegisterSource::Dir("/tmp/x".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let r = parse_request(
            r#"{"cmd":"analyze","snapshot":"a","sections":["basic","degrees"],"options":{"seed":7}}"#,
        )
        .unwrap();
        match r {
            Request::Analyze { snapshot, sections, options, client } => {
                assert_eq!(snapshot, "a");
                assert_eq!(sections, vec![Section::Basic, Section::Degrees]);
                assert_eq!(options.seed, 7);
                assert_eq!(options.lag_cap, AnalysisOptions::quick().lag_cap);
                assert_eq!(client, "", "missing client id maps to the anonymous bucket");
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_client_ids_and_shard_targets() {
        let r = parse_request(
            r#"{"cmd":"analyze","snapshot":"a","sections":["basic"],"client":"tenant-7"}"#,
        )
        .unwrap();
        match r {
            Request::Analyze { client, .. } => assert_eq!(client, "tenant-7"),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_request(r#"{"cmd":"status"}"#).unwrap() {
            Request::Status { snapshot: None } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_request(r#"{"cmd":"status","snapshot":"hot"}"#).unwrap() {
            Request::Status { snapshot: Some(s) } => assert_eq!(s, "hot"),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_request(r#"{"cmd":"metrics","snapshot":"hot"}"#).unwrap() {
            Request::Metrics { snapshot: Some(s), format: MetricsFormat::Json } => {
                assert_eq!(s, "hot")
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_formats() {
        match parse_request(r#"{"cmd":"metrics","format":"prom"}"#).unwrap() {
            Request::Metrics { snapshot: None, format: MetricsFormat::Prom } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_request(r#"{"cmd":"metrics","format":"json"}"#).unwrap() {
            Request::Metrics { format: MetricsFormat::Json, .. } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        let e = parse_request(r#"{"cmd":"metrics","format":"xml"}"#).unwrap_err();
        assert_eq!(e.code(), "bad_request");
    }

    #[test]
    fn parses_watch_with_defaults_and_bounds() {
        match parse_request(r#"{"cmd":"watch"}"#).unwrap() {
            Request::Watch { snapshot: None, interval_ms: 1_000, frames: 5 } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_request(r#"{"cmd":"watch","snapshot":"a","interval_ms":50,"frames":3}"#)
            .unwrap()
        {
            Request::Watch { snapshot: Some(s), interval_ms: 50, frames: 3 } => {
                assert_eq!(s, "a")
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in [
            r#"{"cmd":"watch","interval_ms":1}"#,
            r#"{"cmd":"watch","interval_ms":100000}"#,
            r#"{"cmd":"watch","frames":0}"#,
            r#"{"cmd":"watch","frames":1000000}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.code(), "bad_request", "line {bad} gave {e}");
        }
    }

    #[test]
    fn rate_limited_reply_carries_the_retry_hint_field() {
        let reply = error_reply(&VnetError::RateLimited { retry_after_ms: 750 });
        assert_eq!(
            reply,
            "{\"ok\":false,\"error\":{\"code\":\"rate_limited\",\"message\":\"rate limited; retry after 750 ms\",\"retry_after_ms\":750}}"
        );
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["error"]["retry_after_ms"].as_u64(), Some(750));
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "not json",
            r#"{"cmd":"fly"}"#,
            r#"{"cmd":"register","name":"a"}"#,
            r#"{"cmd":"analyze","snapshot":"a","sections":[]}"#,
            r#"{"cmd":"analyze","snapshot":"a","sections":[3]}"#,
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.code(), "bad_request", "line {line} gave {e}");
        }
        let e = parse_request(r#"{"cmd":"analyze","snapshot":"a","sections":["nope"]}"#)
            .unwrap_err();
        assert_eq!(e.code(), "unknown_section");
    }

    #[test]
    fn error_reply_is_structured() {
        let reply = error_reply(&VnetError::UnknownSnapshot("x\"y".into()));
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["code"].as_str(), Some("unknown_snapshot"));
        assert!(v["error"]["message"].as_str().unwrap().contains("x\"y"));
    }
}
