//! Wire protocol: line-delimited JSON requests and replies.
//!
//! Each request is one JSON object on one line with a `"cmd"` key; each
//! reply is one JSON object on one line with an `"ok"` key.
//!
//! Two envelope generations coexist (full grammar in `docs/API.md`):
//!
//! * **v1 (versioned)** — `{"v":1,"cmd":...}`. Strict: unknown top-level
//!   keys and unknown `options` keys are a structured `invalid_input`
//!   error, so typos (`"boostrap_reps"`) fail loudly instead of silently
//!   computing the wrong thing. `as_of` and `client` are first-class
//!   fields of `analyze`.
//! * **legacy (unversioned)** — no `"v"` key. Parses exactly as before
//!   (silent about extra keys) but every direct reply carries a
//!   `"deprecation"` note pointing at the v1 envelope.
//!
//! A `"v"` of anything but integer `1` is rejected: the field is a
//! contract, not a comment.

use serde_json::Value;
use verified_net::{AnalysisOptions, Section, VnetError};

/// The current wire-envelope version.
pub const PROTOCOL_VERSION: u64 = 1;

/// Deprecation note injected into every direct reply to an unversioned
/// request.
pub const DEPRECATION_NOTE: &str =
    "unversioned request envelope is deprecated; send {\"v\":1,...} (see docs/API.md)";

/// Upper bound on the churn horizon a `register` may request: a year of
/// simulated days is an index; ten years is a memory bomb.
pub const MAX_CHURN_DAYS: u32 = 366;

/// Where a `register` request gets its dataset from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterSource {
    /// Load a saved bundle (`verified_net::save_dataset` layout).
    Dir(String),
    /// Synthesize at a named scale (`"small"` or `"default"`).
    Scale(String),
}

/// Churn-evolution parameters of a `register` request: evolve the
/// registered graph for `days` simulated days so `analyze` can time-travel
/// with `as_of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Days of deterministic churn to index (1..=[`MAX_CHURN_DAYS`]).
    pub days: u32,
    /// Churn master seed (`churn_seed`, default taken by the server).
    pub seed: Option<u64>,
    /// Optional regime-shock day (`churn_shock_day`) for structural-PELT
    /// experiments.
    pub shock_day: Option<u32>,
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Register a dataset snapshot under a name.
    Register {
        /// Snapshot name for later `analyze` calls.
        name: String,
        /// Bundle directory or synthesis scale.
        source: RegisterSource,
        /// When present, build a churn timeline so the snapshot answers
        /// `as_of` queries.
        churn: Option<ChurnSpec>,
        /// Inject the calibrated sybil workload (fake-follower rings live
        /// at day 0, purchased-follower bursts scheduled onto the churn
        /// stream) so the snapshot answers `detect` queries. Requires
        /// `churn_days`: the campaigns arrive as churn days.
        sybil: bool,
    },
    /// Compute (or serve from cache) one or more sections of a snapshot.
    Analyze {
        /// A previously registered snapshot name.
        snapshot: String,
        /// Sections to compute, in reply order.
        sections: Vec<Section>,
        /// Result-affecting knobs; defaults to [`AnalysisOptions::quick`].
        options: AnalysisOptions,
        /// Admission-control identity (the optional `client` field).
        /// Requests without one share the anonymous bucket (`""`).
        client: String,
        /// Time-travel day: analyze the snapshot as it stood at end of
        /// churn day `as_of` instead of the base graph.
        as_of: Option<u32>,
    },
    /// Report snapshots, in-flight work, and lifecycle state; with a
    /// `snapshot` field, just that shard's detail.
    Status {
        /// Restrict the reply to one shard.
        snapshot: Option<String>,
    },
    /// Dump the server's metric counters; with a `snapshot` field, only
    /// the series labelled `{shard=<name>}`.
    Metrics {
        /// Restrict the reply to one shard's labelled series.
        snapshot: Option<String>,
        /// Reply encoding (the optional `format` field).
        format: MetricsFormat,
    },
    /// Stream periodic metric-delta frames over this connection (the
    /// first streaming surface of the protocol).
    Watch {
        /// Restrict the frames to one shard's labelled series.
        snapshot: Option<String>,
        /// Milliseconds between delta frames.
        interval_ms: u64,
        /// Number of delta frames before `watch_complete`.
        frames: u64,
    },
    /// Run the sybil-detection pipeline over a snapshot registered with
    /// `sybil:true`, ranked by fused suspicion and scored against the
    /// planted ground truth.
    Detect {
        /// A previously registered snapshot name.
        snapshot: String,
        /// Admission-control identity (the optional `client` field).
        client: String,
        /// Score the graph as of end of churn day `as_of`; defaults to
        /// the full churn horizon.
        as_of: Option<u32>,
        /// How many top suspects the reply lists (the ranking itself is
        /// always computed over every node).
        top_k: usize,
    },
    /// Drain in-flight work, then stop accepting connections.
    Shutdown,
}

/// A request plus the envelope generation it arrived in. The connection
/// loop uses `versioned` to decide whether to stamp the deprecation note.
#[derive(Debug, Clone)]
pub struct ParsedRequest {
    /// The decoded request.
    pub request: Request,
    /// `true` when the line carried `"v":1`.
    pub versioned: bool,
}

/// How a `metrics` reply is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The PR-2 contract: one JSON object with `counters` and `gauges`
    /// maps (the default).
    #[default]
    Json,
    /// Prometheus text exposition, JSON-escaped into a `body` field so
    /// the reply stays one line.
    Prom,
}

/// Bounds on `watch` parameters: a floor under the interval so a client
/// cannot turn the server into a busy-loop broadcaster, and a cap on
/// frames so a session always terminates.
pub const WATCH_MIN_INTERVAL_MS: u64 = 10;
/// Upper bound on `interval_ms` (a frame an hour apart is a leak, not a
/// subscription).
pub const WATCH_MAX_INTERVAL_MS: u64 = 60_000;
/// Upper bound on requested frames per watch session.
pub const WATCH_MAX_FRAMES: u64 = 100_000;

/// Suspects listed in a `detect` reply when `top_k` is omitted.
pub const DETECT_DEFAULT_TOP_K: usize = 20;
/// Upper bound on `top_k` (the ranking covers every node regardless; the
/// cap bounds reply bytes, not detection work).
pub const DETECT_MAX_TOP_K: usize = 10_000;

fn required_str(v: &Value, key: &str, cmd: &str) -> Result<String, VnetError> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| VnetError::BadRequest(format!("'{cmd}' needs a string '{key}' field")))
}

/// Top-level keys each command accepts under the v1 envelope.
fn allowed_keys(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "register" => &["v", "cmd", "name", "dir", "scale", "churn_days", "churn_seed", "churn_shock_day", "sybil"],
        "analyze" => &["v", "cmd", "snapshot", "sections", "options", "client", "as_of"],
        "detect" => &["v", "cmd", "snapshot", "client", "as_of", "top_k"],
        "status" => &["v", "cmd", "snapshot"],
        "metrics" => &["v", "cmd", "snapshot", "format"],
        "watch" => &["v", "cmd", "snapshot", "interval_ms", "frames"],
        "shutdown" => &["v", "cmd"],
        _ => &["v", "cmd"],
    }
}

/// `options` keys the v1 envelope accepts.
const OPTION_KEYS: &[&str] = &[
    "preset",
    "seed",
    "threads",
    "bootstrap_reps",
    "clustering_samples",
    "distance_sources",
    "betweenness_pivots",
    "eigen_k",
    "lanczos_steps",
    "lag_cap",
    "ngram_rows",
    "fig1_bins",
];

fn reject_unknown_keys(
    v: &Value,
    allowed: &[&str],
    what: &str,
) -> Result<(), VnetError> {
    let Some(keys) = v.keys() else {
        return Ok(());
    };
    for key in keys {
        if !allowed.contains(&key) {
            return Err(VnetError::InvalidInput(format!(
                "unknown {what} key '{key}' (v1 accepts: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Parse the optional `options` object of an `analyze` request.
///
/// Starts from the `preset` (`"quick"`, the default, or `"default"` for
/// the full-cost battery) and overrides any numeric knob given by name.
/// Under the v1 envelope (`strict`), unknown option keys are rejected —
/// a misspelled knob must not silently fall back to its default.
fn parse_options(v: &Value, strict: bool) -> Result<AnalysisOptions, VnetError> {
    if strict {
        reject_unknown_keys(v, OPTION_KEYS, "options")?;
    }
    let base = match v["preset"].as_str() {
        None | Some("quick") => AnalysisOptions::quick(),
        Some("default") => AnalysisOptions::default(),
        Some(other) => {
            return Err(VnetError::BadRequest(format!(
                "unknown options preset '{other}' (quick|default)"
            )))
        }
    };
    let mut b = base.to_builder();
    if let Some(n) = v["seed"].as_u64() {
        b = b.seed(n);
    }
    if let Some(n) = v["threads"].as_u64() {
        b = b.threads(n as usize);
    }
    if let Some(n) = v["bootstrap_reps"].as_u64() {
        b = b.bootstrap_reps(n as usize);
    }
    if let Some(n) = v["clustering_samples"].as_u64() {
        b = b.clustering_samples(n as usize);
    }
    if let Some(n) = v["distance_sources"].as_u64() {
        b = b.distance_sources(n as usize);
    }
    if let Some(n) = v["betweenness_pivots"].as_u64() {
        b = b.betweenness_pivots(n as usize);
    }
    if let Some(n) = v["eigen_k"].as_u64() {
        b = b.eigen_k(n as usize);
    }
    if let Some(n) = v["lanczos_steps"].as_u64() {
        b = b.lanczos_steps(n as usize);
    }
    if let Some(n) = v["lag_cap"].as_u64() {
        b = b.lag_cap(n as usize);
    }
    if let Some(n) = v["ngram_rows"].as_u64() {
        b = b.ngram_rows(n as usize);
    }
    if let Some(n) = v["fig1_bins"].as_u64() {
        b = b.fig1_bins(n as usize);
    }
    Ok(b.build())
}

/// Parse the churn knobs of a `register` request (either envelope).
fn parse_churn(v: &Value) -> Result<Option<ChurnSpec>, VnetError> {
    if v["churn_days"].is_null() {
        if !v["churn_seed"].is_null() || !v["churn_shock_day"].is_null() {
            return Err(VnetError::BadRequest(
                "churn_seed/churn_shock_day need a 'churn_days' field".into(),
            ));
        }
        return Ok(None);
    }
    let days = v["churn_days"]
        .as_u64()
        .ok_or_else(|| VnetError::BadRequest("'churn_days' must be a non-negative integer".into()))?;
    if !(1..=MAX_CHURN_DAYS as u64).contains(&days) {
        return Err(VnetError::BadRequest(format!(
            "'churn_days' must be in [1, {MAX_CHURN_DAYS}]"
        )));
    }
    let seed = match &v["churn_seed"] {
        s if s.is_null() => None,
        s => Some(s.as_u64().ok_or_else(|| {
            VnetError::BadRequest("'churn_seed' must be a non-negative integer".into())
        })?),
    };
    let shock_day = match &v["churn_shock_day"] {
        s if s.is_null() => None,
        s => Some(s.as_u64().ok_or_else(|| {
            VnetError::BadRequest("'churn_shock_day' must be a non-negative integer".into())
        })? as u32),
    };
    Ok(Some(ChurnSpec { days: days as u32, seed, shock_day }))
}

/// Parse one request line into a [`ParsedRequest`].
pub fn parse_request(line: &str) -> Result<ParsedRequest, VnetError> {
    let v: Value = serde_json::from_str(line.trim())
        .map_err(|e| VnetError::BadRequest(format!("request is not valid JSON: {e}")))?;
    let versioned = match &v["v"] {
        ver if ver.is_null() => false,
        ver => match ver.as_u64() {
            Some(PROTOCOL_VERSION) => true,
            _ => {
                return Err(VnetError::InvalidInput(format!(
                    "unsupported protocol version (this server speaks v{PROTOCOL_VERSION})"
                )))
            }
        },
    };
    let cmd = v["cmd"]
        .as_str()
        .ok_or_else(|| VnetError::BadRequest("request needs a string 'cmd' field".into()))?;
    if versioned {
        reject_unknown_keys(&v, allowed_keys(cmd), "request")?;
    }
    let request = match cmd {
        "register" => {
            let name = required_str(&v, "name", "register")?;
            let source = if let Some(dir) = v["dir"].as_str() {
                RegisterSource::Dir(dir.to_string())
            } else if let Some(scale) = v["scale"].as_str() {
                match scale {
                    "small" | "default" => RegisterSource::Scale(scale.to_string()),
                    other => {
                        return Err(VnetError::BadRequest(format!(
                            "unknown scale '{other}' (small|default)"
                        )))
                    }
                }
            } else {
                return Err(VnetError::BadRequest(
                    "'register' needs a 'dir' or 'scale' field".into(),
                ));
            };
            let churn = parse_churn(&v)?;
            let sybil = match &v["sybil"] {
                s if s.is_null() => false,
                s => s.as_bool().ok_or_else(|| {
                    VnetError::BadRequest("'sybil' must be a boolean".into())
                })?,
            };
            if sybil && churn.is_none() {
                return Err(VnetError::BadRequest(
                    "'sybil' needs a 'churn_days' field: the planted campaigns arrive as churn days"
                        .into(),
                ));
            }
            Request::Register { name, source, churn, sybil }
        }
        "detect" => {
            let snapshot = required_str(&v, "snapshot", "detect")?;
            let client = v["client"].as_str().unwrap_or("").to_string();
            let as_of = match &v["as_of"] {
                d if d.is_null() => None,
                d => Some(d.as_u64().ok_or_else(|| {
                    VnetError::BadRequest("'as_of' must be a non-negative integer day".into())
                })? as u32),
            };
            let top_k = match &v["top_k"] {
                t if t.is_null() => DETECT_DEFAULT_TOP_K,
                t => t.as_u64().ok_or_else(|| {
                    VnetError::BadRequest("'top_k' must be a positive integer".into())
                })? as usize,
            };
            if !(1..=DETECT_MAX_TOP_K).contains(&top_k) {
                return Err(VnetError::BadRequest(format!(
                    "'top_k' must be in [1, {DETECT_MAX_TOP_K}]"
                )));
            }
            Request::Detect { snapshot, client, as_of, top_k }
        }
        "analyze" => {
            let snapshot = required_str(&v, "snapshot", "analyze")?;
            let mut sections = Vec::new();
            let list = &v["sections"];
            let mut i = 0;
            while !list[i].is_null() {
                let id = list[i].as_str().ok_or_else(|| {
                    VnetError::BadRequest("'sections' must be an array of section ids".into())
                })?;
                sections.push(id.parse::<Section>()?);
                i += 1;
            }
            if sections.is_empty() {
                return Err(VnetError::BadRequest(
                    "'analyze' needs a non-empty 'sections' array".into(),
                ));
            }
            let options = parse_options(&v["options"], versioned)?;
            let client = v["client"].as_str().unwrap_or("").to_string();
            let as_of = match &v["as_of"] {
                d if d.is_null() => None,
                d => Some(d.as_u64().ok_or_else(|| {
                    VnetError::BadRequest("'as_of' must be a non-negative integer day".into())
                })? as u32),
            };
            Request::Analyze { snapshot, sections, options, client, as_of }
        }
        "status" => Request::Status { snapshot: v["snapshot"].as_str().map(str::to_string) },
        "metrics" => {
            let format = match v["format"].as_str() {
                None | Some("json") => MetricsFormat::Json,
                Some("prom") => MetricsFormat::Prom,
                Some(other) => {
                    return Err(VnetError::BadRequest(format!(
                        "unknown metrics format '{other}' (json|prom)"
                    )))
                }
            };
            Request::Metrics { snapshot: v["snapshot"].as_str().map(str::to_string), format }
        }
        "watch" => {
            let interval_ms = v["interval_ms"].as_u64().unwrap_or(1_000);
            if !(WATCH_MIN_INTERVAL_MS..=WATCH_MAX_INTERVAL_MS).contains(&interval_ms) {
                return Err(VnetError::BadRequest(format!(
                    "'watch' interval_ms must be in [{WATCH_MIN_INTERVAL_MS}, {WATCH_MAX_INTERVAL_MS}]"
                )));
            }
            let frames = v["frames"].as_u64().unwrap_or(5);
            if !(1..=WATCH_MAX_FRAMES).contains(&frames) {
                return Err(VnetError::BadRequest(format!(
                    "'watch' frames must be in [1, {WATCH_MAX_FRAMES}]"
                )));
            }
            Request::Watch {
                snapshot: v["snapshot"].as_str().map(str::to_string),
                interval_ms,
                frames,
            }
        }
        "shutdown" => Request::Shutdown,
        other => return Err(VnetError::BadRequest(format!("unknown cmd '{other}'"))),
    };
    Ok(ParsedRequest { request, versioned })
}

/// Stamp the legacy-envelope deprecation note into a direct reply. The
/// note lands right after the `"ok"` field so replies stay one line and
/// v1 replies stay byte-identical to the pre-envelope goldens.
pub(crate) fn add_deprecation_note(reply: &str) -> String {
    for prefix in ["{\"ok\":true", "{\"ok\":false"] {
        if let Some(rest) = reply.strip_prefix(prefix) {
            return format!("{prefix},\"deprecation\":{}{rest}", json_str(DEPRECATION_NOTE));
        }
    }
    reply.to_string()
}

/// Serialize an error as a structured protocol reply. `rate_limited`
/// carries its retry hint as a machine-readable `retry_after_ms` field
/// next to the message — the serving-side analogue of a `Retry-After`
/// header, deterministic under the admission clock (golden-tested in
/// `tests/tests/serve_admission.rs`).
pub(crate) fn error_reply(e: &VnetError) -> String {
    if let VnetError::RateLimited { retry_after_ms } = e {
        return format!(
            "{{\"ok\":false,\"error\":{{\"code\":\"rate_limited\",\"message\":{},\"retry_after_ms\":{}}}}}",
            json_str(&e.to_string()),
            retry_after_ms,
        );
    }
    format!(
        "{{\"ok\":false,\"error\":{{\"code\":{},\"message\":{}}}}}",
        json_str(e.code()),
        json_str(&e.to_string()),
    )
}

/// JSON-escape a string through the serializer (one escaping policy
/// everywhere, so replies stay byte-stable).
pub(crate) fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("strings serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Request {
        parse_request(line).unwrap().request
    }

    #[test]
    fn parses_register_and_analyze() {
        let r = parse(r#"{"cmd":"register","name":"a","dir":"/tmp/x"}"#);
        match r {
            Request::Register { name, source, churn, sybil } => {
                assert_eq!(name, "a");
                assert_eq!(source, RegisterSource::Dir("/tmp/x".into()));
                assert_eq!(churn, None);
                assert!(!sybil, "sybil defaults off");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let r = parse(
            r#"{"cmd":"analyze","snapshot":"a","sections":["basic","degrees"],"options":{"seed":7}}"#,
        );
        match r {
            Request::Analyze { snapshot, sections, options, client, as_of } => {
                assert_eq!(snapshot, "a");
                assert_eq!(sections, vec![Section::Basic, Section::Degrees]);
                assert_eq!(options.seed, 7);
                assert_eq!(options.lag_cap, AnalysisOptions::quick().lag_cap);
                assert_eq!(client, "", "missing client id maps to the anonymous bucket");
                assert_eq!(as_of, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn v1_envelope_round_trips_and_flags_versioned() {
        let p = parse_request(
            r#"{"v":1,"cmd":"analyze","snapshot":"a","sections":["basic"],"client":"t1","as_of":3}"#,
        )
        .unwrap();
        assert!(p.versioned);
        match p.request {
            Request::Analyze { client, as_of, .. } => {
                assert_eq!(client, "t1");
                assert_eq!(as_of, Some(3));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let p = parse_request(r#"{"cmd":"status"}"#).unwrap();
        assert!(!p.versioned, "no 'v' key means the legacy envelope");
    }

    #[test]
    fn v1_rejects_unknown_keys_as_invalid_input() {
        let e = parse_request(
            r#"{"v":1,"cmd":"analyze","snapshot":"a","sections":["basic"],"sectons":["x"]}"#,
        )
        .unwrap_err();
        assert_eq!(e.code(), "invalid_input");
        let e = parse_request(
            r#"{"v":1,"cmd":"analyze","snapshot":"a","sections":["basic"],"options":{"boostrap_reps":5}}"#,
        )
        .unwrap_err();
        assert_eq!(e.code(), "invalid_input", "misspelled option key must not be silent");
        // The same lines parse fine under the legacy envelope (the old
        // lenient contract), which is exactly why it is deprecated.
        assert!(parse_request(
            r#"{"cmd":"analyze","snapshot":"a","sections":["basic"],"sectons":["x"]}"#
        )
        .is_ok());
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        for line in [
            r#"{"v":2,"cmd":"status"}"#,
            r#"{"v":0,"cmd":"status"}"#,
            r#"{"v":"1","cmd":"status"}"#,
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.code(), "invalid_input", "line {line} gave {e}");
        }
    }

    #[test]
    fn parses_churn_knobs_and_bounds() {
        let r = parse(
            r#"{"v":1,"cmd":"register","name":"a","scale":"small","churn_days":30,"churn_seed":7,"churn_shock_day":10}"#,
        );
        match r {
            Request::Register { churn: Some(spec), .. } => {
                assert_eq!(spec.days, 30);
                assert_eq!(spec.seed, Some(7));
                assert_eq!(spec.shock_day, Some(10));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in [
            r#"{"cmd":"register","name":"a","scale":"small","churn_days":0}"#,
            r#"{"cmd":"register","name":"a","scale":"small","churn_days":100000}"#,
            r#"{"cmd":"register","name":"a","scale":"small","churn_seed":7}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.code(), "bad_request", "line {bad} gave {e}");
        }
    }

    #[test]
    fn parses_sybil_register_knob_and_detect() {
        let r = parse(
            r#"{"v":1,"cmd":"register","name":"a","scale":"small","churn_days":17,"sybil":true}"#,
        );
        match r {
            Request::Register { churn: Some(spec), sybil: true, .. } => {
                assert_eq!(spec.days, 17);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Sybil without a churn horizon is meaningless: the campaigns are
        // scheduled churn days.
        for bad in [
            r#"{"cmd":"register","name":"a","scale":"small","sybil":true}"#,
            r#"{"cmd":"register","name":"a","scale":"small","churn_days":17,"sybil":"yes"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.code(), "bad_request", "line {bad} gave {e}");
        }

        match parse(r#"{"v":1,"cmd":"detect","snapshot":"a"}"#) {
            Request::Detect { snapshot, client, as_of: None, top_k } => {
                assert_eq!(snapshot, "a");
                assert_eq!(client, "");
                assert_eq!(top_k, DETECT_DEFAULT_TOP_K);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(r#"{"v":1,"cmd":"detect","snapshot":"a","client":"t1","as_of":5,"top_k":3}"#) {
            Request::Detect { client, as_of: Some(5), top_k: 3, .. } => {
                assert_eq!(client, "t1")
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in [
            r#"{"cmd":"detect"}"#,
            r#"{"cmd":"detect","snapshot":"a","top_k":0}"#,
            r#"{"cmd":"detect","snapshot":"a","top_k":100000}"#,
            r#"{"cmd":"detect","snapshot":"a","as_of":"soon"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.code(), "bad_request", "line {bad} gave {e}");
        }
        // v1 strictness applies to the new command too.
        let e = parse_request(r#"{"v":1,"cmd":"detect","snapshot":"a","topk":5}"#).unwrap_err();
        assert_eq!(e.code(), "invalid_input");
    }

    #[test]
    fn deprecation_note_lands_after_the_ok_field() {
        let ok = add_deprecation_note("{\"ok\":true,\"snapshot\":\"a\"}");
        assert!(ok.starts_with("{\"ok\":true,\"deprecation\":\""));
        assert!(ok.ends_with(",\"snapshot\":\"a\"}"));
        let err = add_deprecation_note("{\"ok\":false,\"error\":{}}");
        assert!(err.starts_with("{\"ok\":false,\"deprecation\":\""));
        let v: Value = serde_json::from_str(&ok).unwrap();
        assert_eq!(v["deprecation"].as_str(), Some(DEPRECATION_NOTE));
    }

    #[test]
    fn parses_client_ids_and_shard_targets() {
        let r = parse(
            r#"{"cmd":"analyze","snapshot":"a","sections":["basic"],"client":"tenant-7"}"#,
        );
        match r {
            Request::Analyze { client, .. } => assert_eq!(client, "tenant-7"),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(r#"{"cmd":"status"}"#) {
            Request::Status { snapshot: None } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(r#"{"cmd":"status","snapshot":"hot"}"#) {
            Request::Status { snapshot: Some(s) } => assert_eq!(s, "hot"),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(r#"{"cmd":"metrics","snapshot":"hot"}"#) {
            Request::Metrics { snapshot: Some(s), format: MetricsFormat::Json } => {
                assert_eq!(s, "hot")
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_formats() {
        match parse(r#"{"cmd":"metrics","format":"prom"}"#) {
            Request::Metrics { snapshot: None, format: MetricsFormat::Prom } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(r#"{"cmd":"metrics","format":"json"}"#) {
            Request::Metrics { format: MetricsFormat::Json, .. } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        let e = parse_request(r#"{"cmd":"metrics","format":"xml"}"#).unwrap_err();
        assert_eq!(e.code(), "bad_request");
    }

    #[test]
    fn parses_watch_with_defaults_and_bounds() {
        match parse(r#"{"cmd":"watch"}"#) {
            Request::Watch { snapshot: None, interval_ms: 1_000, frames: 5 } => {}
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(r#"{"cmd":"watch","snapshot":"a","interval_ms":50,"frames":3}"#) {
            Request::Watch { snapshot: Some(s), interval_ms: 50, frames: 3 } => {
                assert_eq!(s, "a")
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in [
            r#"{"cmd":"watch","interval_ms":1}"#,
            r#"{"cmd":"watch","interval_ms":100000}"#,
            r#"{"cmd":"watch","frames":0}"#,
            r#"{"cmd":"watch","frames":1000000}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.code(), "bad_request", "line {bad} gave {e}");
        }
    }

    #[test]
    fn rate_limited_reply_carries_the_retry_hint_field() {
        let reply = error_reply(&VnetError::RateLimited { retry_after_ms: 750 });
        assert_eq!(
            reply,
            "{\"ok\":false,\"error\":{\"code\":\"rate_limited\",\"message\":\"rate limited; retry after 750 ms\",\"retry_after_ms\":750}}"
        );
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["error"]["retry_after_ms"].as_u64(), Some(750));
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "not json",
            r#"{"cmd":"fly"}"#,
            r#"{"cmd":"register","name":"a"}"#,
            r#"{"cmd":"analyze","snapshot":"a","sections":[]}"#,
            r#"{"cmd":"analyze","snapshot":"a","sections":[3]}"#,
            r#"{"cmd":"analyze","snapshot":"a","sections":["basic"],"as_of":"soon"}"#,
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.code(), "bad_request", "line {line} gave {e}");
        }
        let e = parse_request(r#"{"cmd":"analyze","snapshot":"a","sections":["nope"]}"#)
            .unwrap_err();
        assert_eq!(e.code(), "unknown_section");
    }

    #[test]
    fn error_reply_is_structured() {
        let reply = error_reply(&VnetError::UnknownSnapshot("x\"y".into()));
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["code"].as_str(), Some("unknown_snapshot"));
        assert!(v["error"]["message"].as_str().unwrap().contains("x\"y"));
    }
}
