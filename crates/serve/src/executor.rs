//! The request executor: a fixed pool of worker threads fed by a bounded
//! queue, with `Condvar` scheduling end to end.
//!
//! This replaces two busy-wait constructs from the first service cut: a
//! detached `std::thread::spawn` per `analyze` request (threads nobody
//! could join or cancel) and a 5 ms sleep loop in shutdown that polled the
//! in-flight counter. Here workers block on a condition variable until a
//! job or shutdown arrives, [`Executor::drain`] blocks on a second
//! condition variable that workers signal exactly when the executor goes
//! quiescent, and every worker thread is joined on shutdown — no thread
//! outlives the [`Executor`].
//!
//! Jobs produce a reply `String` delivered through a [`JobHandle`]; the
//! connection thread waits on the handle with a deadline and can flag
//! cancellation, which the job observes through its [`CancelToken`] at
//! section boundaries (a timed-out computation stops early instead of
//! burning CPU invisibly).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vnet_obs::{pow2_buckets, GaugeId, HistogramId, Obs, Telemetry};

/// Why a job was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitRefusal {
    /// Queue at capacity (or the executor has zero workers): the caller
    /// should answer `queue_full` and let the client back off.
    Saturated {
        /// Jobs queued or running at refusal time.
        in_flight: usize,
        /// The admission limit that was hit.
        limit: usize,
    },
    /// The executor is draining or stopped.
    ShuttingDown,
}

type Job = Box<dyn FnOnce(&CancelToken) -> String + Send + 'static>;

struct QueuedJob {
    run: Job,
    handle: Arc<JobShared>,
    /// Admission time; the worker that dequeues this job records the
    /// difference as the `queue` stage.
    submitted: Instant,
}

/// The executor's hot-path recording handles: queue-state gauges labelled
/// with the owning shard, plus the (shard-agnostic) `queue` and `execute`
/// stage histograms. Registered once per shard at construction —
/// `set_depth_gauge` runs on every submit and completion, which is
/// exactly the per-request storm the old `Obs::set_gauge` path spent
/// formatting label strings under the registry mutex.
pub struct ExecutorTelemetry {
    telemetry: Arc<Telemetry>,
    queue_depth: GaugeId,
    jobs_running: GaugeId,
    stage_queue: HistogramId,
    stage_execute: HistogramId,
}

impl ExecutorTelemetry {
    /// Register this shard's executor handles on `telemetry`
    /// (idempotent: re-registering a shard reuses the same slots).
    pub fn new(telemetry: Arc<Telemetry>, shard: &str) -> Self {
        let labels: &[(&str, &str)] = &[("shard", shard)];
        let stage = |name: &str| {
            telemetry.histogram("serve.stage_wall_micros", &[("stage", name)], &pow2_buckets(26))
        };
        Self {
            queue_depth: telemetry.gauge("serve.queue_depth", labels),
            jobs_running: telemetry.gauge("serve.jobs_running", labels),
            stage_queue: stage("queue"),
            stage_execute: stage("execute"),
            telemetry,
        }
    }
}

#[derive(Debug)]
struct JobShared {
    reply: Mutex<Option<String>>,
    done: Condvar,
    cancelled: AtomicBool,
}

/// The caller's side of a submitted job: wait for the reply, or give up
/// and flag cancellation.
#[derive(Debug)]
pub struct JobHandle {
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// Block until the job replies or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<String> {
        let deadline = Instant::now() + timeout;
        let mut reply = self.shared.reply.lock().expect("job reply lock");
        while reply.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .done
                .wait_timeout(reply, deadline - now)
                .expect("job reply lock");
            reply = guard;
        }
        reply.take()
    }

    /// Ask the job to stop at its next cancellation point. The job may
    /// still complete normally if it was past the last check.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::SeqCst);
    }
}

/// The job's view of its own cancellation flag.
#[derive(Debug)]
pub struct CancelToken {
    shared: Arc<JobShared>,
}

impl CancelToken {
    /// `true` once the submitter gave up on this job.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::SeqCst)
    }
}

struct ExecState {
    queue: VecDeque<QueuedJob>,
    running: usize,
    shutdown: bool,
}

struct ExecInner {
    state: Mutex<ExecState>,
    /// Workers sleep here until a job (or shutdown) arrives.
    work_ready: Condvar,
    /// Drainers sleep here; workers signal when the executor goes
    /// quiescent (nothing queued, nothing running).
    quiescent: Condvar,
    /// Cold-path recording (worker panics); the per-submit gauge storm
    /// goes through `telemetry` instead.
    obs: Arc<Obs>,
    telemetry: ExecutorTelemetry,
}

impl ExecInner {
    fn set_depth_gauge(&self, state: &ExecState) {
        let t = &self.telemetry;
        t.telemetry.set_gauge(t.queue_depth, state.queue.len() as f64);
        t.telemetry.set_gauge(t.jobs_running, state.running as f64);
    }
}

/// Fixed worker-pool executor with a bounded queue.
pub struct Executor {
    inner: Arc<ExecInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    queue_capacity: usize,
}

impl Executor {
    /// Spawn `workers` threads admitting at most `workers +
    /// queue_capacity` in-flight jobs, owned by the shard named `shard`
    /// (the label on every executor gauge and worker thread name). Zero
    /// workers means every submission is refused — useful for
    /// load-shedding configurations and tests.
    pub fn new(
        workers: usize,
        queue_capacity: usize,
        obs: Arc<Obs>,
        shard: &str,
        telemetry: ExecutorTelemetry,
    ) -> Self {
        let inner = Arc::new(ExecInner {
            state: Mutex::new(ExecState {
                queue: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            quiescent: Condvar::new(),
            obs,
            telemetry,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("vnet-serve-worker-{shard}-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { inner, workers: Mutex::new(handles), worker_count: workers, queue_capacity }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs currently queued plus running.
    pub fn in_flight(&self) -> (usize, usize) {
        let state = self.inner.state.lock().expect("executor state lock");
        (state.queue.len(), state.running)
    }

    /// Admit a job, or refuse without blocking. On admission one worker is
    /// woken; the returned [`JobHandle`] delivers the job's reply.
    pub fn submit<F>(&self, job: F) -> Result<JobHandle, SubmitRefusal>
    where
        F: FnOnce(&CancelToken) -> String + Send + 'static,
    {
        let shared = Arc::new(JobShared {
            reply: Mutex::new(None),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        });
        {
            let mut state = self.inner.state.lock().expect("executor state lock");
            if state.shutdown {
                return Err(SubmitRefusal::ShuttingDown);
            }
            // Admission is on *total* in-flight work, not raw queue
            // length: a job pushed a microsecond ago still sits in the
            // queue until an idle worker's condvar wakeup lands, and on
            // a loaded single-core host that window is long enough that
            // a queue-length bound refuses work the executor has spare
            // capacity for. `workers + queue_capacity` is the limit the
            // refusal has always reported; now it is also the one
            // enforced.
            let in_flight = state.queue.len() + state.running;
            if self.worker_count == 0 || in_flight >= self.worker_count + self.queue_capacity {
                return Err(SubmitRefusal::Saturated {
                    in_flight,
                    limit: self.worker_count + self.queue_capacity,
                });
            }
            state.queue.push_back(QueuedJob {
                run: Box::new(job),
                handle: Arc::clone(&shared),
                submitted: Instant::now(),
            });
            self.inner.set_depth_gauge(&state);
        }
        self.inner.work_ready.notify_one();
        Ok(JobHandle { shared })
    }

    /// Block until nothing is queued or running. Purely event-driven: the
    /// caller sleeps on a condition variable that workers signal when the
    /// executor goes quiescent. Returns the number of condvar wakeups
    /// taken, which the server exports as `serve.drain_wakeups` — the
    /// observable proof there is no poll loop here (a 5 ms poll over a
    /// seconds-long drain would take hundreds of iterations; this takes a
    /// handful).
    pub fn drain(&self) -> u64 {
        let mut state = self.inner.state.lock().expect("executor state lock");
        let mut wakeups = 0;
        while state.running > 0 || !state.queue.is_empty() {
            state = self.inner.quiescent.wait(state).expect("executor state lock");
            wakeups += 1;
        }
        wakeups
    }

    /// Stop the workers and join them. Queued jobs that never started are
    /// completed with the reply produced by `orphan` (so no waiter hangs);
    /// call [`Executor::drain`] first for a graceful drain.
    pub fn shutdown_and_join(&self, orphan: impl Fn() -> String) {
        let leftovers: Vec<QueuedJob> = {
            let mut state = self.inner.state.lock().expect("executor state lock");
            state.shutdown = true;
            let leftovers = state.queue.drain(..).collect();
            self.inner.set_depth_gauge(&state);
            leftovers
        };
        self.inner.work_ready.notify_all();
        for job in leftovers {
            complete(&job.handle, orphan());
        }
        let handles: Vec<JoinHandle<()>> =
            self.workers.lock().expect("executor workers lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn complete(handle: &JobShared, reply: String) {
    *handle.reply.lock().expect("job reply lock") = Some(reply);
    handle.done.notify_all();
}

fn worker_loop(inner: &ExecInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("executor state lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.running += 1;
                    inner.set_depth_gauge(&state);
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work_ready.wait(state).expect("executor state lock");
            }
        };
        let t = &inner.telemetry;
        t.telemetry.observe(&t.stage_queue, job.submitted.elapsed().as_micros() as u64);
        let started = Instant::now();
        let token = CancelToken { shared: Arc::clone(&job.handle) };
        let run = std::panic::AssertUnwindSafe(move || (job.run)(&token));
        let reply = match std::panic::catch_unwind(run) {
            Ok(reply) => reply,
            Err(_) => {
                inner.obs.inc_by("serve.worker_panics", &[], 1);
                "{\"ok\":false,\"error\":{\"code\":\"analysis\",\"message\":\"worker panicked\"}}"
                    .to_string()
            }
        };
        complete(&job.handle, reply);
        t.telemetry.observe(&t.stage_execute, started.elapsed().as_micros() as u64);
        let mut state = inner.state.lock().expect("executor state lock");
        state.running -= 1;
        inner.set_depth_gauge(&state);
        if state.running == 0 && state.queue.is_empty() {
            inner.quiescent.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(workers: usize, cap: usize) -> Executor {
        let telemetry = Arc::new(Telemetry::new(2));
        let exec_telemetry = ExecutorTelemetry::new(Arc::clone(&telemetry), "test");
        Executor::new(workers, cap, Arc::new(Obs::new()), "test", exec_telemetry)
    }

    #[test]
    fn jobs_run_and_reply_through_the_handle() {
        let e = exec(2, 4);
        let handles: Vec<JobHandle> = (0..6)
            .map(|i| {
                // Respect the queue bound: admit in waves.
                loop {
                    match e.submit(move |_| format!("r{i}")) {
                        Ok(h) => break h,
                        Err(SubmitRefusal::Saturated { .. }) => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(other) => panic!("refused: {other:?}"),
                    }
                }
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait_timeout(Duration::from_secs(5)), Some(format!("r{i}")));
        }
        e.drain();
        e.shutdown_and_join(String::new);
    }

    #[test]
    fn zero_workers_refuse_everything() {
        let e = exec(0, 0);
        match e.submit(|_| String::new()) {
            Err(SubmitRefusal::Saturated { in_flight: 0, limit: 0 }) => {}
            other => panic!("expected saturation, got {other:?}"),
        }
        e.shutdown_and_join(String::new);
    }

    #[test]
    fn saturation_counts_queued_and_running() {
        let e = exec(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let running = e
            .submit(move |_| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().expect("gate");
                while !*open {
                    open = cv.wait(open).expect("gate");
                }
                "ran".into()
            })
            .expect("admit running job");
        // Wait until the worker picked it up so the queue is empty again.
        while e.in_flight() != (0, 1) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = e.submit(|_| "queued".into()).expect("admit queued job");
        match e.submit(|_| String::new()) {
            Err(SubmitRefusal::Saturated { in_flight: 2, limit: 2 }) => {}
            other => panic!("expected saturation, got {other:?}"),
        }
        let (lock, cv) = &*gate;
        *lock.lock().expect("gate") = true;
        cv.notify_all();
        assert_eq!(running.wait_timeout(Duration::from_secs(5)), Some("ran".into()));
        assert_eq!(queued.wait_timeout(Duration::from_secs(5)), Some("queued".into()));
        e.drain();
        e.shutdown_and_join(String::new);
    }

    #[test]
    fn cancellation_reaches_the_token() {
        let e = exec(1, 1);
        let h = e
            .submit(|token| {
                while !token.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                "cancelled".into()
            })
            .expect("admit");
        assert_eq!(h.wait_timeout(Duration::from_millis(20)), None, "wait should time out");
        h.cancel();
        assert_eq!(h.wait_timeout(Duration::from_secs(5)), Some("cancelled".into()));
        e.drain();
        e.shutdown_and_join(String::new);
    }

    #[test]
    fn drain_is_event_driven_not_a_poll_loop() {
        let e = exec(2, 4);
        for _ in 0..4 {
            while e
                .submit(|_| {
                    std::thread::sleep(Duration::from_millis(60));
                    String::new()
                })
                .is_err()
            {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let wakeups = e.drain();
        // A 5 ms poll over ~120 ms of work would take ~25 iterations; the
        // condvar is signalled only at quiescence.
        assert!(wakeups <= 8, "drain took {wakeups} wakeups — looks like a poll loop");
        assert_eq!(e.in_flight(), (0, 0));
        e.shutdown_and_join(String::new);
    }

    #[test]
    fn shutdown_completes_orphaned_queue_entries() {
        let e = exec(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let running = e
            .submit(move |_| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().expect("gate");
                while !*open {
                    open = cv.wait(open).expect("gate");
                }
                "ran".into()
            })
            .expect("admit");
        while e.in_flight() != (0, 1) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let orphan = e.submit(|_| "never runs".into()).expect("admit");
        let shutdown = std::thread::spawn({
            let gate = Arc::clone(&gate);
            move || {
                std::thread::sleep(Duration::from_millis(20));
                let (lock, cv) = &*gate;
                *lock.lock().expect("gate") = true;
                cv.notify_all();
            }
        });
        // Non-graceful shutdown: the queued job is answered by `orphan`.
        e.shutdown_and_join(|| "orphaned".to_string());
        assert_eq!(orphan.wait_timeout(Duration::from_secs(5)), Some("orphaned".into()));
        assert_eq!(running.wait_timeout(Duration::from_secs(5)), Some("ran".into()));
        shutdown.join().expect("shutdown helper");
    }
}
