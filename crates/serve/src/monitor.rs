//! Self-monitoring: the server watches its own telemetry for regime
//! shifts.
//!
//! A background sampler ring-buffers periodic [`MonitorSample`]s of the
//! load-bearing operational series — total queue depth, running jobs,
//! cache hit rate, active connections — and, on every `status` request,
//! runs `vnet-timeseries` PELT change-point detection over each series.
//! The same Gaussian mean+variance cost that finds the paper's December
//! 2017 / April 2018 shifts in follower trajectories here flags a queue
//! backing up or a cache-hit-rate collapse as a [`MonitorAlert`] with
//! the sample index and before/after segment means — dogfooding the
//! analysis stack on the system that serves it.
//!
//! The monitor is **opt-in** (`ServerConfig::self_monitor`); when off,
//! nothing is sampled and the `status` reply carries no `self_monitor`
//! field, so its bytes are unchanged from the pre-monitor protocol.

use std::collections::VecDeque;
use std::sync::Mutex;

use vnet_timeseries::pelt::pelt_with_min_seg;

use crate::protocol::json_str;

/// Self-monitor configuration (see [`SelfMonitorConfig::default`]).
#[derive(Debug, Clone)]
pub struct SelfMonitorConfig {
    /// Sampling period of the background thread.
    pub interval_millis: u64,
    /// Ring-buffer capacity in samples; at the default interval the
    /// default capacity covers the last two minutes.
    pub capacity: usize,
    /// PELT minimum segment length: a regime must persist this many
    /// samples to be flagged (debounces single-sample spikes).
    pub min_segment: usize,
    /// Change-point penalty as a multiple of `ln n`; larger → fewer
    /// alerts.
    pub penalty_scale: f64,
}

impl Default for SelfMonitorConfig {
    fn default() -> Self {
        Self { interval_millis: 500, capacity: 240, min_segment: 5, penalty_scale: 3.0 }
    }
}

/// One periodic observation of the server's own state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSample {
    /// Jobs queued across all shard executors.
    pub queue_depth: f64,
    /// Jobs running across all shard executors.
    pub running: f64,
    /// `cache.hits / (cache.hits + cache.misses)`, or 0 before any
    /// lookup.
    pub cache_hit_rate: f64,
    /// Open connection count.
    pub conn_active: f64,
}

/// Pulls one monitored series' value out of a sample.
type SeriesExtractor = fn(&MonitorSample) -> f64;

/// The operational series PELT watches, with extractors.
const SERIES: [(&str, SeriesExtractor); 4] = [
    ("queue_depth", |s| s.queue_depth),
    ("running", |s| s.running),
    ("cache_hit_rate", |s| s.cache_hit_rate),
    ("conn_active", |s| s.conn_active),
];

/// A detected regime shift in one monitored series.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorAlert {
    /// Which series shifted (`queue_depth`, `running`, `cache_hit_rate`,
    /// `conn_active`).
    pub series: &'static str,
    /// Ring-buffer index of the first sample of the new regime.
    pub index: usize,
    /// Mean of the segment ending at the change point.
    pub before_mean: f64,
    /// Mean of the segment starting at the change point.
    pub after_mean: f64,
}

/// The sample ring plus the detection pass over it.
pub(crate) struct SelfMonitor {
    config: SelfMonitorConfig,
    ring: Mutex<VecDeque<MonitorSample>>,
}

impl SelfMonitor {
    pub(crate) fn new(config: SelfMonitorConfig) -> Self {
        Self { config, ring: Mutex::new(VecDeque::new()) }
    }

    /// Sampling period for the background thread.
    pub(crate) fn interval_millis(&self) -> u64 {
        self.config.interval_millis
    }

    /// Append one sample, evicting the oldest past capacity.
    pub(crate) fn push(&self, sample: MonitorSample) {
        let mut ring = self.ring.lock().expect("monitor ring lock");
        if ring.len() == self.config.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
    }

    /// Run PELT over every monitored series and collect regime shifts.
    /// Series shorter than two minimum segments cannot contain a
    /// detectable change and report nothing.
    pub(crate) fn alerts(&self) -> (usize, Vec<MonitorAlert>) {
        let ring = self.ring.lock().expect("monitor ring lock");
        let samples: Vec<MonitorSample> = ring.iter().copied().collect();
        drop(ring);
        let n = samples.len();
        let mut alerts = Vec::new();
        if n < 2 * self.config.min_segment {
            return (n, alerts);
        }
        let penalty = self.config.penalty_scale * (n as f64).ln();
        for (name, extract) in SERIES {
            let series: Vec<f64> = samples.iter().map(extract).collect();
            let Ok(result) = pelt_with_min_seg(&series, penalty, self.config.min_segment) else {
                continue;
            };
            // Segment boundaries: [0, cp1, cp2, …, n]; each change point
            // is the first index of its new regime.
            let mut bounds = vec![0usize];
            bounds.extend(result.changepoints.iter().copied());
            bounds.push(n);
            for w in 1..bounds.len() - 1 {
                let (prev, cp, next) = (bounds[w - 1], bounds[w], bounds[w + 1]);
                alerts.push(MonitorAlert {
                    series: name,
                    index: cp,
                    before_mean: mean(&series[prev..cp]),
                    after_mean: mean(&series[cp..next]),
                });
            }
        }
        (n, alerts)
    }

    /// The `self_monitor` object appended to the global `status` reply.
    pub(crate) fn status_json(&self) -> String {
        let (samples, alerts) = self.alerts();
        let parts: Vec<String> = alerts
            .iter()
            .map(|a| {
                format!(
                    "{{\"series\":{},\"index\":{},\"before_mean\":{:?},\"after_mean\":{:?}}}",
                    json_str(a.series),
                    a.index,
                    a.before_mean,
                    a.after_mean,
                )
            })
            .collect();
        format!("{{\"samples\":{},\"alerts\":[{}]}}", samples, parts.join(","))
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(queue_depth: f64) -> MonitorSample {
        MonitorSample { queue_depth, running: 0.0, cache_hit_rate: 1.0, conn_active: 1.0 }
    }

    #[test]
    fn quiet_ring_raises_no_alerts() {
        let m = SelfMonitor::new(SelfMonitorConfig::default());
        for _ in 0..40 {
            m.push(sample(0.0));
        }
        let (n, alerts) = m.alerts();
        assert_eq!(n, 40);
        assert!(alerts.is_empty(), "constant series alerted: {alerts:?}");
        assert_eq!(m.status_json(), "{\"samples\":40,\"alerts\":[]}");
    }

    #[test]
    fn queue_depth_regime_shift_is_flagged_with_segment_means() {
        let m = SelfMonitor::new(SelfMonitorConfig::default());
        for _ in 0..30 {
            m.push(sample(0.0));
        }
        for _ in 0..30 {
            m.push(sample(8.0));
        }
        let (n, alerts) = m.alerts();
        assert_eq!(n, 60);
        let qd: Vec<&MonitorAlert> =
            alerts.iter().filter(|a| a.series == "queue_depth").collect();
        assert_eq!(qd.len(), 1, "expected exactly one queue_depth shift: {alerts:?}");
        assert_eq!(qd[0].index, 30);
        assert_eq!(qd[0].before_mean, 0.0);
        assert_eq!(qd[0].after_mean, 8.0);
        // The constant companion series stay silent.
        assert!(alerts.iter().all(|a| a.series == "queue_depth"), "{alerts:?}");
    }

    #[test]
    fn cache_hit_rate_collapse_is_flagged() {
        let m = SelfMonitor::new(SelfMonitorConfig::default());
        for i in 0..48 {
            let rate = if i < 24 { 0.95 } else { 0.1 };
            m.push(MonitorSample {
                queue_depth: 0.0,
                running: 0.0,
                cache_hit_rate: rate,
                conn_active: 2.0,
            });
        }
        let (_, alerts) = m.alerts();
        let hit: Vec<&MonitorAlert> =
            alerts.iter().filter(|a| a.series == "cache_hit_rate").collect();
        assert_eq!(hit.len(), 1, "{alerts:?}");
        assert_eq!(hit[0].index, 24);
        assert!(hit[0].before_mean > 0.9 && hit[0].after_mean < 0.2);
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let m = SelfMonitor::new(SelfMonitorConfig {
            capacity: 10,
            ..SelfMonitorConfig::default()
        });
        for i in 0..25 {
            m.push(sample(i as f64));
        }
        let (n, _) = m.alerts();
        assert_eq!(n, 10);
        let ring = m.ring.lock().expect("ring");
        assert_eq!(ring.front().map(|s| s.queue_depth), Some(15.0));
        assert_eq!(ring.back().map(|s| s.queue_depth), Some(24.0));
    }

    #[test]
    fn short_rings_are_silent_not_erroring() {
        let m = SelfMonitor::new(SelfMonitorConfig::default());
        for _ in 0..6 {
            m.push(sample(5.0));
        }
        let (n, alerts) = m.alerts();
        assert_eq!((n, alerts.len()), (6, 0));
    }
}
