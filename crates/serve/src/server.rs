//! The TCP server: accept loop, per-connection protocol handling,
//! bounded scheduling on the shared analysis context, and graceful
//! shutdown.
//!
//! Concurrency model: one OS thread per connection reads request lines;
//! each `analyze` acquires one of `max_in_flight` slots and runs on a
//! detached worker thread so the connection thread can enforce the
//! per-request timeout with `recv_timeout` (a timed-out computation
//! finishes in the background — and still populates the cache — while
//! the client gets a structured `timeout` error). Shutdown flips a flag
//! that fails new work fast, then spin-waits until the in-flight count
//! drains to zero before the accept loop exits.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use verified_net::{
    run_analysis_section, AnalysisCtx, AnalysisOptions, Dataset, Section, SynthesisConfig,
    VnetError,
};
use vnet_obs::{fingerprint_str, Obs};
use vnet_par::ParPool;

use crate::cache::{CacheKey, CachedSection, ResultCache};
use crate::protocol::{error_reply, json_str, parse_request, RegisterSource, Request};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Width of the shared fork-join pool analysis runs on.
    pub threads: usize,
    /// Maximum concurrently running `analyze` requests; further requests
    /// get a `queue_full` reply instead of queueing unboundedly.
    pub max_in_flight: usize,
    /// Result-cache capacity in section payloads.
    pub cache_capacity: usize,
    /// Per-request compute budget before a `timeout` reply.
    pub request_timeout_millis: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            max_in_flight: 4,
            cache_capacity: 64,
            request_timeout_millis: 120_000,
        }
    }
}

/// One registered dataset snapshot.
struct Snapshot {
    dataset: Dataset,
    fingerprint: u64,
}

struct Shared {
    config: ServerConfig,
    ctx: AnalysisCtx,
    obs: Arc<Obs>,
    snapshots: Mutex<BTreeMap<String, Arc<Snapshot>>>,
    cache: Mutex<ResultCache>,
    in_flight: AtomicUsize,
    shutting_down: AtomicBool,
    stopped: AtomicBool,
}

/// The service entrypoint; see [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `config.addr` and start serving in a background thread.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let obs = Arc::new(Obs::new());
        let shared = Arc::new(Shared {
            ctx: AnalysisCtx::new(ParPool::new(config.threads), Arc::clone(&obs)),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            config,
            obs,
            snapshots: Mutex::new(BTreeMap::new()),
            in_flight: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ServerHandle { local_addr, shared, accept: Some(accept) })
    }
}

/// Handle to a running server: address, registration, and lifecycle.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's observability registry (cache and request counters
    /// accumulate here; snapshot it with [`Obs::manifest`]).
    pub fn obs_handle(&self) -> Arc<Obs> {
        Arc::clone(&self.shared.obs)
    }

    /// Register a dataset directly (no wire round-trip); returns its
    /// content fingerprint. Useful for embedding the server in a process
    /// that already built the dataset.
    pub fn register_dataset(&self, name: &str, dataset: Dataset) -> u64 {
        register_snapshot(&self.shared, name, dataset)
    }

    /// Ask the server to shut down as if a `shutdown` request arrived:
    /// refuse new work, drain in-flight requests, stop accepting.
    pub fn shutdown(&self) {
        drain_and_stop(&self.shared);
    }

    /// Block until the accept loop exits (after a `shutdown` request or
    /// [`ServerHandle::shutdown`]).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

const POLL: Duration = Duration::from_millis(10);

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stopped.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let (reply, stop_after) = handle_line(&shared, &line);
                if writer.write_all(reply.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
                if stop_after {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Dispatch one request line; returns the reply and whether the
/// connection (and, for shutdown, the server) should stop afterwards.
fn handle_line(shared: &Arc<Shared>, line: &str) -> (String, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.obs.inc_by("serve.bad_requests", &[], 1);
            return (error_reply(&e), false);
        }
    };
    match request {
        Request::Register { name, source } => (handle_register(shared, &name, source), false),
        Request::Analyze { snapshot, sections, options } => {
            (handle_analyze(shared, &snapshot, &sections, &options), false)
        }
        Request::Status => (handle_status(shared), false),
        Request::Metrics => (handle_metrics(shared), false),
        Request::Shutdown => {
            drain_and_stop(shared);
            ("{\"ok\":true,\"drained\":true}".to_string(), true)
        }
    }
}

fn drain_and_stop(shared: &Shared) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    while shared.in_flight.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    shared.stopped.store(true, Ordering::SeqCst);
}

fn register_snapshot(shared: &Shared, name: &str, dataset: Dataset) -> u64 {
    let fingerprint = dataset.fingerprint();
    let mut snaps = shared.snapshots.lock().expect("snapshots lock");
    snaps.insert(name.to_string(), Arc::new(Snapshot { dataset, fingerprint }));
    shared.obs.set_counter("serve.snapshots", &[], snaps.len() as u64);
    fingerprint
}

fn handle_register(shared: &Arc<Shared>, name: &str, source: RegisterSource) -> String {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(&VnetError::ShuttingDown);
    }
    let dataset = match source {
        RegisterSource::Dir(dir) => match verified_net::load_dataset(&dir) {
            Ok(ds) => ds,
            Err(e) => return error_reply(&e),
        },
        RegisterSource::Scale(scale) => {
            let config = if scale == "small" {
                SynthesisConfig::small()
            } else {
                SynthesisConfig::default()
            };
            Dataset::build(&config, &shared.ctx)
        }
    };
    let summary = dataset.summary();
    let fingerprint = register_snapshot(shared, name, dataset);
    format!(
        "{{\"ok\":true,\"snapshot\":{},\"fingerprint\":{},\"users\":{},\"edges\":{}}}",
        json_str(name),
        fingerprint,
        summary.users,
        summary.edges,
    )
}

fn handle_analyze(
    shared: &Arc<Shared>,
    snapshot: &str,
    sections: &[Section],
    options: &AnalysisOptions,
) -> String {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(&VnetError::ShuttingDown);
    }
    let snap = {
        let snaps = shared.snapshots.lock().expect("snapshots lock");
        match snaps.get(snapshot) {
            Some(s) => Arc::clone(s),
            None => return error_reply(&VnetError::UnknownSnapshot(snapshot.to_string())),
        }
    };
    // Bounded admission: take a slot or refuse outright — a refused
    // client can back off; an unbounded queue can only fall over.
    let limit = shared.config.max_in_flight;
    if shared
        .in_flight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < limit).then_some(n + 1))
        .is_err()
    {
        shared.obs.inc_by("serve.rejected{reason=queue_full}", &[], 1);
        return error_reply(&VnetError::QueueFull { in_flight: limit, limit });
    }
    shared.obs.inc_by("serve.requests", &[], 1);

    let worker_shared = Arc::clone(shared);
    let worker_snapshot = snapshot.to_string();
    let worker_sections = sections.to_vec();
    let worker_options = *options;
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let reply = compute_reply(
            &worker_shared,
            &worker_snapshot,
            &snap,
            &worker_sections,
            &worker_options,
        );
        worker_shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        let _ = tx.send(reply);
    });
    match rx.recv_timeout(Duration::from_millis(shared.config.request_timeout_millis)) {
        Ok(reply) => reply,
        Err(_) => {
            // The worker keeps running (and will still warm the cache);
            // only this client's wait is over.
            shared.obs.inc_by("serve.rejected{reason=timeout}", &[], 1);
            error_reply(&VnetError::Timeout { millis: shared.config.request_timeout_millis })
        }
    }
}

/// Compute (or fetch) every requested section and assemble the reply.
///
/// Cache lookups and inserts take the lock briefly; the analysis itself
/// runs outside it so slow sections never serialize unrelated requests.
fn compute_reply(
    shared: &Shared,
    snapshot: &str,
    snap: &Snapshot,
    sections: &[Section],
    options: &AnalysisOptions,
) -> String {
    let opts_fp = options.fingerprint();
    let mut parts = Vec::with_capacity(sections.len());
    for &section in sections {
        let key = CacheKey { dataset: snap.fingerprint, options: opts_fp, section };
        let cached = shared.cache.lock().expect("cache lock").get(&key);
        let entry = match cached {
            Some(hit) => {
                shared.obs.inc_by("cache.hits", &[], 1);
                hit
            }
            None => {
                shared.obs.inc_by("cache.misses", &[], 1);
                let payload =
                    match run_analysis_section(&snap.dataset, section, options, &shared.ctx) {
                        Ok(p) => p,
                        Err(e) => return error_reply(&e),
                    };
                let payload_json =
                    serde_json::to_string(&payload).expect("section payloads serialize");
                let fingerprint = fingerprint_str(&payload_json);
                let value = Arc::new(CachedSection { payload_json, fingerprint });
                let mut cache = shared.cache.lock().expect("cache lock");
                let evicted = cache.insert(key, Arc::clone(&value));
                if evicted > 0 {
                    shared.obs.inc_by("cache.evictions", &[], evicted as u64);
                }
                shared.obs.set_counter("cache.entries", &[], cache.len() as u64);
                value
            }
        };
        parts.push(format!(
            "{{\"section\":{},\"fingerprint\":{},\"payload\":{}}}",
            json_str(section.id()),
            entry.fingerprint,
            entry.payload_json,
        ));
    }
    format!(
        "{{\"ok\":true,\"snapshot\":{},\"dataset_fingerprint\":{},\"options_fingerprint\":{},\"sections\":[{}]}}",
        json_str(snapshot),
        snap.fingerprint,
        opts_fp,
        parts.join(","),
    )
}

fn handle_status(shared: &Shared) -> String {
    let snaps = shared.snapshots.lock().expect("snapshots lock");
    let names: Vec<String> = snaps.keys().map(|k| json_str(k)).collect();
    format!(
        "{{\"ok\":true,\"snapshots\":[{}],\"in_flight\":{},\"cache_entries\":{},\"shutting_down\":{}}}",
        names.join(","),
        shared.in_flight.load(Ordering::SeqCst),
        shared.cache.lock().expect("cache lock").len(),
        shared.shutting_down.load(Ordering::SeqCst),
    )
}

fn handle_metrics(shared: &Shared) -> String {
    // The manifest's counter map is a BTreeMap: sorted keys, so the reply
    // is deterministic given the same counter state.
    let manifest = shared.obs.manifest("serve", 0);
    let counters: Vec<String> = manifest
        .counters
        .iter()
        .map(|(k, v)| format!("{}:{}", json_str(k), v))
        .collect();
    format!("{{\"ok\":true,\"counters\":{{{}}}}}", counters.join(","))
}
