//! The TCP server: accept loop, shared state, request dispatch, and
//! graceful shutdown.
//!
//! Concurrency model (see `docs/ARCHITECTURE.md` for the full picture):
//! one registered thread per connection frames request lines through
//! [`crate::framing::LineReader`] (slow writers keep their partial bytes
//! across read-timeout ticks); `analyze` work is admitted into a fixed
//! worker-pool [`Executor`] with a bounded queue (refusals get
//! `queue_full`); concurrent identical section computations coalesce
//! through [`FlightMap`] so N waiters cost one computation; and shutdown
//! is event-driven — the executor's quiescence condvar replaces the old
//! 5 ms drain poll, a loopback wake replaces the old 10 ms accept poll,
//! and every worker and connection thread is joined before the listener
//! dies.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use verified_net::{
    run_analysis_section, AnalysisCtx, AnalysisOptions, Dataset, Section, SynthesisConfig,
    VnetError,
};
use vnet_obs::{fingerprint_str, Obs};
use vnet_par::ParPool;

use crate::cache::{CacheKey, CachedSection, ResultCache};
use crate::conn::ConnRegistry;
use crate::executor::{CancelToken, Executor, SubmitRefusal};
use crate::flight::{FlightMap, Role};
use crate::protocol::{error_reply, json_str, parse_request, RegisterSource, Request};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Width of the shared fork-join pool analysis runs on.
    pub threads: usize,
    /// Worker threads in the request executor — the maximum concurrently
    /// *running* `analyze` requests.
    pub max_in_flight: usize,
    /// Bounded executor queue: requests admitted beyond the running limit
    /// wait here; past it they get a `queue_full` reply instead of
    /// queueing unboundedly.
    pub queue_depth: usize,
    /// Result-cache capacity in section payloads.
    pub cache_capacity: usize,
    /// Per-request compute budget before a `timeout` reply (the timed-out
    /// job is cancelled at its next section boundary).
    pub request_timeout_millis: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            max_in_flight: 4,
            queue_depth: 4,
            cache_capacity: 64,
            request_timeout_millis: 120_000,
        }
    }
}

/// One registered dataset snapshot.
struct Snapshot {
    dataset: Dataset,
    fingerprint: u64,
}

pub(crate) struct Shared {
    config: ServerConfig,
    ctx: AnalysisCtx,
    pub(crate) obs: Arc<Obs>,
    local_addr: SocketAddr,
    snapshots: Mutex<BTreeMap<String, Arc<Snapshot>>>,
    cache: Mutex<ResultCache>,
    executor: Executor,
    flights: Arc<FlightMap>,
    conns: Arc<ConnRegistry>,
    shutting_down: AtomicBool,
    pub(crate) stopped: AtomicBool,
}

/// The service entrypoint; see [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `config.addr` and start serving in a background thread.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let obs = Arc::new(Obs::new());
        let shared = Arc::new(Shared {
            ctx: AnalysisCtx::new(ParPool::new(config.threads), Arc::clone(&obs)),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            executor: Executor::new(config.max_in_flight, config.queue_depth, Arc::clone(&obs)),
            config,
            obs,
            local_addr,
            snapshots: Mutex::new(BTreeMap::new()),
            flights: Arc::new(FlightMap::new()),
            conns: Arc::new(ConnRegistry::new()),
            shutting_down: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("vnet-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(ServerHandle { local_addr, shared, accept: Some(accept) })
    }
}

/// Handle to a running server: address, registration, and lifecycle.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's observability registry (request, cache, executor and
    /// connection counters accumulate here; snapshot it with
    /// [`Obs::manifest`]).
    pub fn obs_handle(&self) -> Arc<Obs> {
        Arc::clone(&self.shared.obs)
    }

    /// Register a dataset directly (no wire round-trip); returns its
    /// content fingerprint. Useful for embedding the server in a process
    /// that already built the dataset.
    pub fn register_dataset(&self, name: &str, dataset: Dataset) -> u64 {
        register_snapshot(&self.shared, name, dataset)
    }

    /// Ask the server to shut down as if a `shutdown` request arrived:
    /// refuse new work, drain in-flight requests, stop accepting.
    pub fn shutdown(&self) {
        drain_and_stop(&self.shared);
    }

    /// Block until the accept loop exits (after a `shutdown` request or
    /// [`ServerHandle::shutdown`]). The accept loop in turn joins every
    /// connection thread, so returning means no server thread survives.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // Blocking accept: the thread sleeps in the kernel until a client (or
    // the shutdown self-connect from `drain_and_stop`) arrives — no
    // `WouldBlock` polling.
    while !shared.stopped.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopped.load(Ordering::SeqCst) {
                    break; // the shutdown wake-up connection
                }
                shared.conns.spawn_connection(stream, Arc::clone(&shared));
            }
            Err(_) => {
                if shared.stopped.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Listener closes when it drops; connection threads exit at their
    // next read tick and are all joined here.
    drop(listener);
    shared.conns.join_all();
}

/// Dispatch one request line; returns the reply and whether the
/// connection (and, for shutdown, the server) should stop afterwards.
pub(crate) fn handle_line(shared: &Arc<Shared>, line: &str) -> (String, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.obs.inc_by("serve.bad_requests", &[], 1);
            return (error_reply(&e), false);
        }
    };
    match request {
        Request::Register { name, source } => (handle_register(shared, &name, source), false),
        Request::Analyze { snapshot, sections, options } => {
            (handle_analyze(shared, &snapshot, sections, options), false)
        }
        Request::Status => (handle_status(shared), false),
        Request::Metrics => (handle_metrics(shared), false),
        Request::Shutdown => {
            drain_and_stop(shared);
            ("{\"ok\":true,\"drained\":true}".to_string(), true)
        }
    }
}

/// Refuse new work, drain the executor, stop the accept loop. Fully
/// event-driven: the drain blocks on the executor's quiescence condvar
/// (wakeup count exported as `serve.drain_wakeups`, duration as the
/// `serve.drain_wall_micros` histogram), and the accept thread is woken
/// by a loopback connection instead of a poll.
fn drain_and_stop(shared: &Shared) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    let started = Instant::now();
    let wakeups = shared.executor.drain();
    shared.obs.inc_by("serve.drain_wakeups", &[], wakeups);
    shared
        .obs
        .observe("serve.drain_wall_micros", &[], started.elapsed().as_micros() as f64);
    shared.executor.shutdown_and_join(|| error_reply(&VnetError::ShuttingDown));
    shared.stopped.store(true, Ordering::SeqCst);
    // Wake the accept thread so it observes `stopped` and exits.
    let _ = TcpStream::connect(shared.local_addr);
}

fn register_snapshot(shared: &Shared, name: &str, dataset: Dataset) -> u64 {
    let fingerprint = dataset.fingerprint();
    let mut snaps = shared.snapshots.lock().expect("snapshots lock");
    snaps.insert(name.to_string(), Arc::new(Snapshot { dataset, fingerprint }));
    shared.obs.set_counter("serve.snapshots", &[], snaps.len() as u64);
    fingerprint
}

fn handle_register(shared: &Arc<Shared>, name: &str, source: RegisterSource) -> String {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(&VnetError::ShuttingDown);
    }
    let dataset = match source {
        RegisterSource::Dir(dir) => match verified_net::load_dataset(&dir) {
            Ok(ds) => ds,
            Err(e) => return error_reply(&e),
        },
        RegisterSource::Scale(scale) => {
            let config = if scale == "small" {
                SynthesisConfig::small()
            } else {
                SynthesisConfig::default()
            };
            Dataset::build(&config, &shared.ctx)
        }
    };
    let summary = dataset.summary();
    let fingerprint = register_snapshot(shared, name, dataset);
    format!(
        "{{\"ok\":true,\"snapshot\":{},\"fingerprint\":{},\"users\":{},\"edges\":{}}}",
        json_str(name),
        fingerprint,
        summary.users,
        summary.edges,
    )
}

fn handle_analyze(
    shared: &Arc<Shared>,
    snapshot: &str,
    sections: Vec<Section>,
    options: AnalysisOptions,
) -> String {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(&VnetError::ShuttingDown);
    }
    let snap = {
        let snaps = shared.snapshots.lock().expect("snapshots lock");
        match snaps.get(snapshot) {
            Some(s) => Arc::clone(s),
            None => return error_reply(&VnetError::UnknownSnapshot(snapshot.to_string())),
        }
    };
    // Bounded admission: the executor takes the job or refuses outright —
    // a refused client can back off; an unbounded queue can only fall
    // over.
    let worker_shared = Arc::clone(shared);
    let worker_snapshot = snapshot.to_string();
    let submitted = shared.executor.submit(move |cancel| {
        compute_reply(&worker_shared, &worker_snapshot, &snap, &sections, &options, cancel)
    });
    let handle = match submitted {
        Ok(h) => h,
        Err(SubmitRefusal::Saturated { in_flight, limit }) => {
            shared.obs.inc_by("serve.rejected{reason=queue_full}", &[], 1);
            return error_reply(&VnetError::QueueFull { in_flight, limit });
        }
        Err(SubmitRefusal::ShuttingDown) => {
            return error_reply(&VnetError::ShuttingDown);
        }
    };
    shared.obs.inc_by("serve.requests", &[], 1);
    let budget = Duration::from_millis(shared.config.request_timeout_millis);
    match handle.wait_timeout(budget) {
        Some(reply) => reply,
        None => {
            // Flag cancellation: the job stops at its next section
            // boundary (completed sections have already warmed the cache)
            // instead of burning CPU invisibly.
            handle.cancel();
            shared.obs.inc_by("serve.rejected{reason=timeout}", &[], 1);
            error_reply(&VnetError::Timeout { millis: shared.config.request_timeout_millis })
        }
    }
}

/// Fetch one section from the cache, or compute it under single-flight
/// coalescing: the first worker to miss becomes the leader and computes;
/// concurrent workers for the same key follow the open flight and share
/// the leader's bytes (`serve.coalesced` counts the followers).
fn section_bytes(
    shared: &Shared,
    snap: &Snapshot,
    key: CacheKey,
    options: &AnalysisOptions,
) -> Result<Arc<CachedSection>, String> {
    if let Some(hit) = shared.cache.lock().expect("cache lock").get(&key) {
        shared.obs.inc_by("cache.hits", &[], 1);
        return Ok(hit);
    }
    match shared.flights.begin(key) {
        Role::Follower(flight) => {
            shared.obs.inc_by("serve.coalesced", &[], 1);
            flight.wait()
        }
        Role::Leader(guard) => {
            // Re-check under leadership: a previous leader may have
            // populated the cache between our miss and our begin().
            if let Some(hit) = shared.cache.lock().expect("cache lock").get(&key) {
                shared.obs.inc_by("cache.hits", &[], 1);
                guard.publish(Ok(Arc::clone(&hit)));
                return Ok(hit);
            }
            shared.obs.inc_by("cache.misses", &[], 1);
            let payload = match run_analysis_section(&snap.dataset, key.section, options, &shared.ctx)
            {
                Ok(p) => p,
                Err(e) => {
                    let reply = error_reply(&e);
                    guard.publish(Err(reply.clone()));
                    return Err(reply);
                }
            };
            let payload_json =
                serde_json::to_string(&payload).expect("section payloads serialize");
            let fingerprint = fingerprint_str(&payload_json);
            let value = Arc::new(CachedSection { payload_json, fingerprint });
            {
                let mut cache = shared.cache.lock().expect("cache lock");
                let evicted = cache.insert(key, Arc::clone(&value));
                if evicted > 0 {
                    shared.obs.inc_by("cache.evictions", &[], evicted as u64);
                }
                shared.obs.set_counter("cache.entries", &[], cache.len() as u64);
            }
            guard.publish(Ok(Arc::clone(&value)));
            Ok(value)
        }
    }
}

/// Compute (or fetch) every requested section and assemble the reply.
/// Runs on an executor worker; `cancel` is checked at section boundaries.
fn compute_reply(
    shared: &Shared,
    snapshot: &str,
    snap: &Snapshot,
    sections: &[Section],
    options: &AnalysisOptions,
    cancel: &CancelToken,
) -> String {
    let opts_fp = options.fingerprint();
    let mut parts = Vec::with_capacity(sections.len());
    for &section in sections {
        if cancel.is_cancelled() {
            // The waiter is gone (request timeout); stop doing work. Any
            // sections already computed have warmed the cache.
            shared.obs.inc_by("serve.cancelled_jobs", &[], 1);
            return error_reply(&VnetError::Timeout {
                millis: shared.config.request_timeout_millis,
            });
        }
        let key = CacheKey { dataset: snap.fingerprint, options: opts_fp, section };
        let entry = match section_bytes(shared, snap, key, options) {
            Ok(entry) => entry,
            Err(error_reply) => return error_reply,
        };
        parts.push(format!(
            "{{\"section\":{},\"fingerprint\":{},\"payload\":{}}}",
            json_str(section.id()),
            entry.fingerprint,
            entry.payload_json,
        ));
    }
    format!(
        "{{\"ok\":true,\"snapshot\":{},\"dataset_fingerprint\":{},\"options_fingerprint\":{},\"sections\":[{}]}}",
        json_str(snapshot),
        snap.fingerprint,
        opts_fp,
        parts.join(","),
    )
}

fn handle_status(shared: &Shared) -> String {
    let snaps = shared.snapshots.lock().expect("snapshots lock");
    let names: Vec<String> = snaps.keys().map(|k| json_str(k)).collect();
    let (queued, running) = shared.executor.in_flight();
    format!(
        "{{\"ok\":true,\"snapshots\":[{}],\"in_flight\":{},\"queued\":{},\"open_flights\":{},\"cache_entries\":{},\"shutting_down\":{}}}",
        names.join(","),
        running,
        queued,
        shared.flights.open_count(),
        shared.cache.lock().expect("cache lock").len(),
        shared.shutting_down.load(Ordering::SeqCst),
    )
}

fn handle_metrics(shared: &Shared) -> String {
    // The manifest's metric maps are BTreeMaps: sorted keys, so the reply
    // is deterministic given the same recording state.
    let manifest = shared.obs.manifest("serve", 0);
    let counters: Vec<String> = manifest
        .counters
        .iter()
        .map(|(k, v)| format!("{}:{}", json_str(k), v))
        .collect();
    let gauges: Vec<String> = manifest
        .gauges
        .iter()
        .map(|(k, v)| format!("{}:{:?}", json_str(k), v))
        .collect();
    format!(
        "{{\"ok\":true,\"counters\":{{{}}},\"gauges\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
    )
}
