//! The TCP server: accept loop, shared state, request dispatch, and
//! graceful shutdown.
//!
//! Request path (see `docs/ARCHITECTURE.md` for the full picture):
//! **admission → shard router → executor**. One registered thread per
//! connection frames request lines through [`crate::framing::LineReader`]
//! (slow writers keep their partial bytes across read-timeout ticks);
//! `analyze` requests first pass the per-client token-bucket
//! [`Admission`] gate (`rate_limited` + deterministic `retry_after_ms`
//! on rejection, mirroring `twittersim`'s window semantics), then route
//! to their snapshot's [`Shard`] — each shard owns a bounded-queue
//! worker-pool [`Executor`] (refusals get `queue_full`), an LRU section
//! cache, and a single-flight map, so a hot snapshot cannot starve the
//! others. Shutdown is event-driven — every shard drains on its
//! executor's quiescence condvar, a loopback wake replaces accept
//! polling, and every worker and connection thread is joined before the
//! listener dies.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use verified_net::{
    run_analysis_section, AnalysisCtx, AnalysisOptions, Dataset, Section, SynthesisConfig,
    VnetError,
};
use vnet_detect::{evaluate, run_detection, DetectConfig, DetectInput};
use vnet_graph::NodeId;
use vnet_obs::{fingerprint_str, render_prometheus_parts, Obs, Telemetry};
use vnet_par::ParPool;
use vnet_synth::{
    inject_sybil, ChurnConfig, ChurnEvent, ChurnStream, SybilConfig, SybilWorkload,
};
use vnet_temporal::{EngineConfig, Timeline};

use crate::admission::{Admission, AdmissionClock, AdmissionPolicy};
use crate::cache::{CacheKey, CachedSection};
use crate::conn::{ConnRegistry, READ_TICK};
use crate::executor::{CancelToken, SubmitRefusal};
use crate::flight::Role;
use crate::monitor::{MonitorSample, SelfMonitor, SelfMonitorConfig};
use crate::protocol::{
    add_deprecation_note, error_reply, json_str, parse_request, ChurnSpec, MetricsFormat,
    RegisterSource, Request,
};
use crate::shards::{Shard, ShardRegistry, SnapshotData, SybilState, TemporalState};
use crate::stats::ServeStats;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Width of the shared fork-join pool analysis runs on.
    pub threads: usize,
    /// Worker threads in **each shard's** request executor — the maximum
    /// concurrently *running* `analyze` requests per snapshot.
    pub max_in_flight: usize,
    /// Bounded per-shard executor queue: requests admitted beyond the
    /// running limit wait here; past it they get a `queue_full` reply
    /// instead of queueing unboundedly.
    pub queue_depth: usize,
    /// Each shard's result-cache capacity in section payloads.
    pub cache_capacity: usize,
    /// Per-request compute budget before a `timeout` reply (the timed-out
    /// job is cancelled at its next section boundary).
    pub request_timeout_millis: u64,
    /// Per-client token-bucket admission control; `None` (the default)
    /// admits everything. The window accounting mirrors `twittersim`'s
    /// rate-limit windows — see [`Admission`].
    pub admission: Option<AdmissionPolicy>,
    /// The clock admission windows are charged against. The default wall
    /// clock counts real milliseconds; tests freeze time with
    /// [`AdmissionClock::manual`] to pin `retry_after_ms` bytes.
    pub admission_clock: AdmissionClock,
    /// Optional PELT self-monitoring: a background sampler rings up
    /// periodic operational snapshots and `status` reports detected
    /// regime shifts. `None` (the default) samples nothing and leaves
    /// the `status` reply bytes exactly as before.
    pub self_monitor: Option<SelfMonitorConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            max_in_flight: 4,
            queue_depth: 4,
            cache_capacity: 64,
            request_timeout_millis: 120_000,
            admission: None,
            admission_clock: AdmissionClock::wall(),
            self_monitor: None,
        }
    }
}

/// Telemetry stripes for the hot-path recorder: enough that the
/// connection threads and shard workers of a default config rarely share
/// a stripe, bounded so slab memory stays trivial.
const TELEMETRY_STRIPES: usize = 16;

pub(crate) struct Shared {
    config: ServerConfig,
    ctx: AnalysisCtx,
    pub(crate) obs: Arc<Obs>,
    /// Interned hot-path metric handles (global ones; per-shard handles
    /// live on each [`Shard`]).
    pub(crate) stats: ServeStats,
    local_addr: SocketAddr,
    shards: ShardRegistry,
    admission: Option<Admission>,
    conns: Arc<ConnRegistry>,
    /// Self-monitor ring, when configured.
    monitor: Option<Arc<SelfMonitor>>,
    shutting_down: AtomicBool,
    pub(crate) stopped: AtomicBool,
}

/// The service entrypoint; see [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `config.addr` and start serving in a background thread.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let obs = Arc::new(Obs::new());
        // The hot-path recorder: attached to the server's Obs so every
        // snapshot (metrics/status/manifest/prom) sees one merged
        // registry; recording goes through interned handles in
        // `ServeStats` and never takes the registry lock.
        let telemetry = Arc::new(Telemetry::new(TELEMETRY_STRIPES));
        obs.attach_telemetry(Arc::clone(&telemetry));
        let stats = ServeStats::new(telemetry);
        let admission = config
            .admission
            .map(|policy| Admission::new(policy, config.admission_clock.clone()));
        let monitor = config
            .self_monitor
            .clone()
            .map(|monitor_config| Arc::new(SelfMonitor::new(monitor_config)));
        let shared = Arc::new(Shared {
            ctx: AnalysisCtx::new(ParPool::new(config.threads), Arc::clone(&obs)),
            config,
            obs,
            stats,
            local_addr,
            shards: ShardRegistry::new(),
            admission,
            conns: Arc::new(ConnRegistry::new()),
            monitor,
            shutting_down: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("vnet-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        let sampler = shared.monitor.is_some().then(|| {
            let sampler_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vnet-serve-monitor".to_string())
                .spawn(move || monitor_loop(&sampler_shared))
                .expect("spawn monitor thread")
        });
        Ok(ServerHandle { local_addr, shared, accept: Some(accept), sampler })
    }
}

/// Handle to a running server: address, registration, and lifecycle.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's observability registry (request, cache, executor and
    /// connection counters accumulate here; snapshot it with
    /// [`Obs::manifest`]).
    pub fn obs_handle(&self) -> Arc<Obs> {
        Arc::clone(&self.shared.obs)
    }

    /// Register a dataset directly (no wire round-trip); returns its
    /// content fingerprint. Useful for embedding the server in a process
    /// that already built the dataset.
    pub fn register_dataset(&self, name: &str, dataset: Dataset) -> u64 {
        register_snapshot(&self.shared, name, dataset, None)
    }

    /// Ask the server to shut down as if a `shutdown` request arrived:
    /// refuse new work, drain in-flight requests, stop accepting.
    pub fn shutdown(&self) {
        drain_and_stop(&self.shared);
    }

    /// Inject one self-monitor sample, exactly as the background sampler
    /// would record it. Returns `false` when the server runs without a
    /// monitor. This is the deterministic test hook for the PELT
    /// detection path: a test can replay a synthetic regime shift
    /// without waiting out real sampling intervals.
    pub fn inject_monitor_sample(&self, sample: MonitorSample) -> bool {
        match &self.shared.monitor {
            Some(monitor) => {
                monitor.push(sample);
                true
            }
            None => false,
        }
    }

    /// Block until the accept loop exits (after a `shutdown` request or
    /// [`ServerHandle::shutdown`]). The accept loop in turn joins every
    /// connection thread, so returning means no server thread survives.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
    }
}

/// The self-monitor sampler: every interval, snapshot queue/running
/// totals, the cache hit rate, and the connection gauge into the ring.
/// Sleeps in read-tick slices so shutdown is never blocked behind a long
/// interval.
fn monitor_loop(shared: &Arc<Shared>) {
    let monitor = shared.monitor.as_ref().expect("monitor_loop without monitor");
    let interval = Duration::from_millis(monitor.interval_millis());
    while !shared.stopped.load(Ordering::SeqCst) {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.stopped.load(Ordering::SeqCst) {
                return;
            }
            let slice = READ_TICK.min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        let (mut queued, mut running) = (0usize, 0usize);
        for shard in shared.shards.all() {
            let (q, r) = shard.executor.in_flight();
            queued += q;
            running += r;
        }
        let metrics = shared.obs.metrics();
        let hits = metrics.counter("cache.hits", &[]) as f64;
        let misses = metrics.counter("cache.misses", &[]) as f64;
        let lookups = hits + misses;
        monitor.push(MonitorSample {
            queue_depth: queued as f64,
            running: running as f64,
            cache_hit_rate: if lookups > 0.0 { hits / lookups } else { 0.0 },
            conn_active: metrics.gauge("serve.conn_active", &[]).unwrap_or(0.0),
        });
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // Blocking accept: the thread sleeps in the kernel until a client (or
    // the shutdown self-connect from `drain_and_stop`) arrives — no
    // `WouldBlock` polling.
    while !shared.stopped.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopped.load(Ordering::SeqCst) {
                    break; // the shutdown wake-up connection
                }
                shared.conns.spawn_connection(stream, Arc::clone(&shared));
            }
            Err(_) => {
                if shared.stopped.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Listener closes when it drops; connection threads exit at their
    // next read tick and are all joined here.
    drop(listener);
    shared.conns.join_all();
}

/// What the connection loop should do with a dispatched request.
pub(crate) enum Dispatch {
    /// Write this reply and keep serving the connection.
    Reply(String),
    /// Write this reply, then close the connection (shutdown).
    ReplyThenStop(String),
    /// Enter a watch session: stream periodic metric-delta frames.
    Watch(WatchParams),
}

/// A validated watch subscription.
pub(crate) struct WatchParams {
    /// Restrict frames to one shard's labelled series.
    pub(crate) snapshot: Option<String>,
    pub(crate) interval: Duration,
    pub(crate) frames: u64,
}

/// Dispatch one request line.
pub(crate) fn handle_line(shared: &Arc<Shared>, line: &str) -> Dispatch {
    let parsed = match parse_request(line) {
        Ok(p) => p,
        Err(e) => {
            shared.obs.inc_by("serve.bad_requests", &[], 1);
            return Dispatch::Reply(error_reply(&e));
        }
    };
    let versioned = parsed.versioned;
    if !versioned {
        shared.obs.inc_by("serve.legacy_requests", &[], 1);
    }
    // Legacy (unversioned) envelopes keep working but their direct
    // replies carry a `deprecation` field pointing at the v1 grammar.
    // Watch acks are streamed frames and stay unannotated (docs/API.md).
    let noted = |dispatch: Dispatch| -> Dispatch {
        if versioned {
            return dispatch;
        }
        match dispatch {
            Dispatch::Reply(r) => Dispatch::Reply(add_deprecation_note(&r)),
            Dispatch::ReplyThenStop(r) => Dispatch::ReplyThenStop(add_deprecation_note(&r)),
            other => other,
        }
    };
    match parsed.request {
        Request::Register { name, source, churn, sybil } => {
            noted(Dispatch::Reply(handle_register(shared, &name, source, churn, sybil)))
        }
        Request::Analyze { snapshot, sections, options, client, as_of } => noted(
            Dispatch::Reply(handle_analyze(shared, &snapshot, sections, options, &client, as_of)),
        ),
        Request::Detect { snapshot, client, as_of, top_k } => {
            noted(Dispatch::Reply(handle_detect(shared, &snapshot, &client, as_of, top_k)))
        }
        Request::Status { snapshot } => {
            noted(Dispatch::Reply(handle_status(shared, snapshot.as_deref())))
        }
        Request::Metrics { snapshot, format } => {
            noted(Dispatch::Reply(handle_metrics(shared, snapshot.as_deref(), format)))
        }
        Request::Watch { snapshot, interval_ms, frames } => {
            if let Some(name) = &snapshot {
                if shared.shards.get(name).is_none() {
                    return noted(Dispatch::Reply(error_reply(&VnetError::UnknownSnapshot(
                        name.clone(),
                    ))));
                }
            }
            shared.obs.inc_by("serve.watch_sessions", &[], 1);
            Dispatch::Watch(WatchParams {
                snapshot,
                interval: Duration::from_millis(interval_ms),
                frames,
            })
        }
        Request::Shutdown => {
            drain_and_stop(shared);
            noted(Dispatch::ReplyThenStop("{\"ok\":true,\"drained\":true}".to_string()))
        }
    }
}

/// Refuse new work, drain every shard's executor, stop the accept loop.
/// Fully event-driven: each drain blocks on its executor's quiescence
/// condvar (wakeup count exported as `serve.drain_wakeups`, duration as
/// the `serve.drain_wall_micros` histogram), and the accept thread is
/// woken by a loopback connection instead of a poll.
fn drain_and_stop(shared: &Shared) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    let started = Instant::now();
    let mut wakeups = 0;
    for shard in shared.shards.all() {
        wakeups += shard.executor.drain();
    }
    shared.obs.inc_by("serve.drain_wakeups", &[], wakeups);
    shared
        .obs
        .observe("serve.drain_wall_micros", &[], started.elapsed().as_micros() as f64);
    for shard in shared.shards.all() {
        shard.executor.shutdown_and_join(|| error_reply(&VnetError::ShuttingDown));
    }
    shared.stopped.store(true, Ordering::SeqCst);
    // Wake the accept thread so it observes `stopped` and exits.
    let _ = TcpStream::connect(shared.local_addr);
}

fn register_snapshot(
    shared: &Shared,
    name: &str,
    dataset: Dataset,
    temporal: Option<TemporalState>,
) -> u64 {
    shared.shards.register(
        name,
        dataset,
        temporal,
        crate::shards::ShardLimits {
            workers: shared.config.max_in_flight,
            queue_depth: shared.config.queue_depth,
            cache_capacity: shared.config.cache_capacity,
        },
        &shared.obs,
        &shared.stats,
    )
}

/// How often the churn [`Timeline`] checkpoints the stream: `as_of` day
/// resolution replays at most this many days from the nearest checkpoint.
const TIMELINE_CHECKPOINT_STRIDE: u32 = 7;

/// Build the churn timeline for a snapshot registered with `churn_days`.
/// The stream derives roles/fame from the crawled graph's degrees; the
/// engine skips PageRank (serve sections compute their own ranks) and
/// refits the tail exponent weekly to keep registration cheap. With a
/// sybil `workload`, the planted campaigns are scheduled onto the stream
/// (so they arrive as temporal shock days) and the per-day follow
/// attribution + ground truth ride along in a [`SybilState`].
fn build_temporal(
    shared: &Shared,
    dataset: &Dataset,
    spec: &ChurnSpec,
    workload: Option<&SybilWorkload>,
) -> Result<TemporalState, VnetError> {
    let seed = spec.seed.unwrap_or(ChurnConfig::default().seed);
    let mut churn_config = ChurnConfig { seed, ..ChurnConfig::default() };
    if let Some(day) = spec.shock_day {
        churn_config =
            churn_config.with_shock(day, ChurnConfig::default().shock_churn_multiplier);
    }
    let mut stream = ChurnStream::from_graph(&dataset.graph, churn_config);
    if let Some(w) = workload {
        w.attach(&mut stream);
    }
    let engine_config = EngineConfig {
        compact_every: TIMELINE_CHECKPOINT_STRIDE,
        refit_every: TIMELINE_CHECKPOINT_STRIDE,
        pagerank: None,
    };
    let timeline = Timeline::build(
        stream,
        engine_config,
        spec.days,
        TIMELINE_CHECKPOINT_STRIDE,
        &shared.ctx,
    );
    let state = TemporalState::new(timeline, seed);
    Ok(match workload {
        None => state,
        Some(w) => {
            let daily = collect_daily_follows(dataset, churn_config, w, spec.days);
            state.with_sybil(SybilState::new(w.labels.clone(), daily))
        }
    })
}

/// Replay the (deterministic) churn stream once more to record each day's
/// `Follow` events — the burst scorer's attribution. [`Timeline::build`]
/// consumes its stream, so the replay runs on an identically-seeded
/// second stream with the same scheduled campaigns.
fn collect_daily_follows(
    dataset: &Dataset,
    churn_config: ChurnConfig,
    workload: &SybilWorkload,
    days: u32,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut stream = ChurnStream::from_graph(&dataset.graph, churn_config);
    workload.attach(&mut stream);
    let mut daily = Vec::with_capacity(days as usize);
    for _ in 0..days {
        let batch = stream.next_day();
        daily.push(
            batch
                .events
                .iter()
                .filter_map(|e| match e {
                    ChurnEvent::Follow { source, target } => Some((*source, *target)),
                    _ => None,
                })
                .collect(),
        );
    }
    daily
}

fn handle_register(
    shared: &Arc<Shared>,
    name: &str,
    source: RegisterSource,
    churn: Option<ChurnSpec>,
    sybil: bool,
) -> String {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(&VnetError::ShuttingDown);
    }
    let dataset = match source {
        RegisterSource::Dir(dir) => match verified_net::load_dataset(&dir) {
            Ok(ds) => ds,
            Err(e) => return error_reply(&e),
        },
        RegisterSource::Scale(scale) => {
            let config = if scale == "small" {
                SynthesisConfig::small()
            } else {
                SynthesisConfig::default()
            };
            Dataset::build(&config, &shared.ctx)
        }
    };
    // Adversarial registration: plant the calibrated sybil workload into
    // the base graph (rings live at day 0) before the churn timeline is
    // built, so the scheduled purchase campaigns arrive as churn days.
    let workload = sybil.then(|| inject_sybil(&dataset.graph, &SybilConfig::default()));
    let dataset = match &workload {
        Some(w) => Dataset { graph: w.graph.clone(), ..dataset },
        None => dataset,
    };
    let temporal = match &churn {
        Some(spec) => match build_temporal(shared, &dataset, spec, workload.as_ref()) {
            Ok(state) => {
                let series = state.timeline.series();
                shared.obs.set_counter(
                    "serve.churn_days",
                    &[("shard", name)],
                    state.timeline.days() as u64,
                );
                shared.obs.set_counter(
                    "serve.structural_shifts",
                    &[("shard", name)],
                    state.timeline.shifts().len() as u64,
                );
                debug_assert_eq!(series.reciprocity.len(), state.timeline.days() as usize + 1);
                Some(state)
            }
            Err(e) => return error_reply(&e),
        },
        None => None,
    };
    let churn_suffix = churn
        .as_ref()
        .map(|spec| format!(",\"churn_days\":{}", spec.days))
        .unwrap_or_default();
    let sybil_suffix = workload
        .as_ref()
        .map(|w| format!(",\"sybil_planted\":{}", w.labels.sybils().len()))
        .unwrap_or_default();
    let summary = dataset.summary();
    let fingerprint = register_snapshot(shared, name, dataset, temporal);
    format!(
        "{{\"ok\":true,\"snapshot\":{},\"fingerprint\":{},\"users\":{},\"edges\":{}{}{}}}",
        json_str(name),
        fingerprint,
        summary.users,
        summary.edges,
        churn_suffix,
        sybil_suffix,
    )
}

fn handle_analyze(
    shared: &Arc<Shared>,
    snapshot: &str,
    sections: Vec<Section>,
    options: AnalysisOptions,
    client: &str,
    as_of: Option<u32>,
) -> String {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(&VnetError::ShuttingDown);
    }
    // Gate 1 — admission control, before any routing or queueing:
    // over-quota clients are turned away at the front door with a
    // deterministic retry hint, exactly like the simulated API's
    // rate-limit windows (rejections consume no quota). Recording goes
    // through interned telemetry handles: this path runs for every
    // analyze request, so it must not serialize on the registry mutex.
    if let Some(admission) = &shared.admission {
        let stats = &shared.stats;
        let admission_started = Instant::now();
        let verdict = admission.try_admit(client);
        stats.observe_stage(&stats.stage_admission, admission_started);
        if let Err(retry_after_ms) = verdict {
            stats.telemetry.inc(stats.rejected_rate_limited);
            stats.telemetry.observe(&stats.retry_after_ms, retry_after_ms);
            return error_reply(&VnetError::RateLimited { retry_after_ms });
        }
    }
    // Gate 2 — the shard router.
    let shard = match shared.shards.get(snapshot) {
        Some(s) => s,
        None => return error_reply(&VnetError::UnknownSnapshot(snapshot.to_string())),
    };
    let data = shard.data();
    // Gate 3 — bounded admission into the shard's own executor: the
    // queue takes the job or refuses outright — a refused client can
    // back off; an unbounded queue can only fall over. Saturation here
    // is scoped to this shard; other snapshots keep their own slots.
    let worker_shared = Arc::clone(shared);
    let worker_shard = Arc::clone(&shard);
    let submitted = shard.executor.submit(move |cancel| {
        compute_reply(&worker_shared, &worker_shard, &data, as_of, &sections, &options, cancel)
    });
    let stats = &shared.stats;
    let handle = match submitted {
        Ok(h) => h,
        Err(SubmitRefusal::Saturated { in_flight, limit }) => {
            stats.telemetry.inc(stats.rejected_queue_full);
            stats.telemetry.inc(shard.stats.rejected_queue_full);
            return error_reply(&VnetError::QueueFull { in_flight, limit });
        }
        Err(SubmitRefusal::ShuttingDown) => {
            return error_reply(&VnetError::ShuttingDown);
        }
    };
    stats.telemetry.inc(stats.requests);
    stats.telemetry.inc(stats.admitted);
    stats.telemetry.inc(shard.stats.requests);
    let budget = Duration::from_millis(shared.config.request_timeout_millis);
    match handle.wait_timeout(budget) {
        Some(reply) => reply,
        None => {
            // Flag cancellation: the job stops at its next section
            // boundary (completed sections have already warmed the cache)
            // instead of burning CPU invisibly.
            handle.cancel();
            shared.obs.inc_by("serve.rejected{reason=timeout}", &[], 1);
            error_reply(&VnetError::Timeout { millis: shared.config.request_timeout_millis })
        }
    }
}

/// Fetch one section from the shard's cache, or compute it under
/// single-flight coalescing: the first worker to miss becomes the leader
/// and computes; concurrent workers for the same key follow the open
/// flight and share the leader's bytes (`serve.coalesced` counts the
/// followers). Cache and flight state are per-shard; counters are
/// recorded both globally and under the shard's label.
fn section_bytes(
    shared: &Shared,
    shard: &Shard,
    data: &SnapshotData,
    key: CacheKey,
    options: &AnalysisOptions,
) -> Result<Arc<CachedSection>, String> {
    let stats = &shared.stats;
    let shard_label: &[(&str, &str)] = &[("shard", &shard.name)];
    if let Some(hit) = shard.cache.lock().expect("cache lock").get(&key) {
        stats.telemetry.inc(stats.cache_hits);
        stats.telemetry.inc(shard.stats.hits);
        if key.day.is_some() {
            stats.telemetry.inc(stats.asof_cache_hits);
        }
        return Ok(hit);
    }
    match shard.flights.begin(key) {
        Role::Follower(flight) => {
            stats.telemetry.inc(stats.coalesced);
            stats.telemetry.inc(shard.stats.coalesced);
            flight.wait()
        }
        Role::Leader(guard) => {
            // Re-check under leadership: a previous leader may have
            // populated the cache between our miss and our begin().
            if let Some(hit) = shard.cache.lock().expect("cache lock").get(&key) {
                stats.telemetry.inc(stats.cache_hits);
                stats.telemetry.inc(shard.stats.hits);
                if key.day.is_some() {
                    stats.telemetry.inc(stats.asof_cache_hits);
                }
                guard.publish(Ok(Arc::clone(&hit)));
                return Ok(hit);
            }
            shared.obs.inc_by("cache.misses", &[], 1);
            shared.obs.inc("cache.misses", shard_label);
            let payload =
                match run_analysis_section(&data.dataset, key.section, options, &shared.ctx) {
                    Ok(p) => p,
                    Err(e) => {
                        let reply = error_reply(&e);
                        guard.publish(Err(reply.clone()));
                        return Err(reply);
                    }
                };
            let payload_json =
                serde_json::to_string(&payload).expect("section payloads serialize");
            let fingerprint = fingerprint_str(&payload_json);
            let value = Arc::new(CachedSection { payload_json, fingerprint });
            {
                let mut cache = shard.cache.lock().expect("cache lock");
                let evicted = cache.insert(key, Arc::clone(&value));
                if evicted > 0 {
                    shared.obs.inc_by("cache.evictions", &[], evicted as u64);
                    shared.obs.inc_by("cache.evictions", shard_label, evicted as u64);
                }
                shared.obs.set_counter("cache.entries", shard_label, cache.len() as u64);
            }
            // The unlabelled total sums every shard's cache (locks taken
            // one at a time, after this shard's guard is released).
            let total: usize = shared
                .shards
                .all()
                .iter()
                .map(|s| s.cache.lock().expect("cache lock").len())
                .sum();
            shared.obs.set_counter("cache.entries", &[], total as u64);
            guard.publish(Ok(Arc::clone(&value)));
            Ok(value)
        }
    }
}

/// Compute (or fetch) every requested section and assemble the reply.
/// Runs on a shard executor worker; `cancel` is checked at section
/// boundaries.
fn compute_reply(
    shared: &Shared,
    shard: &Shard,
    base: &SnapshotData,
    as_of: Option<u32>,
    sections: &[Section],
    options: &AnalysisOptions,
    cancel: &CancelToken,
) -> String {
    // Time-travel: swap in the day-`as_of` dataset. Resolution happens
    // here, on the executor worker, so a cold replay is covered by the
    // request timeout and cancellable like any other heavy work.
    let day_data: Arc<SnapshotData>;
    let data: &SnapshotData = match as_of {
        None => base,
        Some(day) => {
            let Some(temporal) = shard.temporal() else {
                return error_reply(&VnetError::InvalidInput(format!(
                    "snapshot '{}' has no churn timeline; register it with churn_days to use as_of",
                    shard.name,
                )));
            };
            match temporal.day_data(day, base) {
                Ok((resolved, materialized)) => {
                    if materialized {
                        shared.stats.telemetry.inc(shared.stats.asof_materializations);
                    }
                    day_data = resolved;
                    &day_data
                }
                Err(e) => return error_reply(&e),
            }
        }
    };
    let opts_fp = options.fingerprint();
    let mut parts = Vec::with_capacity(sections.len());
    for &section in sections {
        if cancel.is_cancelled() {
            // The waiter is gone (request timeout); stop doing work. Any
            // sections already computed have warmed the cache.
            shared.obs.inc_by("serve.cancelled_jobs", &[], 1);
            return error_reply(&VnetError::Timeout {
                millis: shared.config.request_timeout_millis,
            });
        }
        let key =
            CacheKey { dataset: data.fingerprint, options: opts_fp, section, day: as_of };
        let entry = match section_bytes(shared, shard, data, key, options) {
            Ok(entry) => entry,
            Err(error_reply) => return error_reply,
        };
        parts.push(format!(
            "{{\"section\":{},\"fingerprint\":{},\"payload\":{}}}",
            json_str(section.id()),
            entry.fingerprint,
            entry.payload_json,
        ));
    }
    let as_of_field =
        as_of.map(|day| format!(",\"as_of\":{day}")).unwrap_or_default();
    format!(
        "{{\"ok\":true,\"snapshot\":{}{},\"dataset_fingerprint\":{},\"options_fingerprint\":{},\"sections\":[{}]}}",
        json_str(&shard.name),
        as_of_field,
        data.fingerprint,
        opts_fp,
        parts.join(","),
    )
}

/// `detect`: the same admission → shard-router → executor path as
/// `analyze`, running the sybil-detection pipeline instead of analysis
/// sections. Requires the snapshot to have been registered with
/// `sybil:true` (and therefore `churn_days`).
fn handle_detect(
    shared: &Arc<Shared>,
    snapshot: &str,
    client: &str,
    as_of: Option<u32>,
    top_k: usize,
) -> String {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error_reply(&VnetError::ShuttingDown);
    }
    if let Some(admission) = &shared.admission {
        let stats = &shared.stats;
        let admission_started = Instant::now();
        let verdict = admission.try_admit(client);
        stats.observe_stage(&stats.stage_admission, admission_started);
        if let Err(retry_after_ms) = verdict {
            stats.telemetry.inc(stats.rejected_rate_limited);
            stats.telemetry.observe(&stats.retry_after_ms, retry_after_ms);
            return error_reply(&VnetError::RateLimited { retry_after_ms });
        }
    }
    let shard = match shared.shards.get(snapshot) {
        Some(s) => s,
        None => return error_reply(&VnetError::UnknownSnapshot(snapshot.to_string())),
    };
    let data = shard.data();
    let worker_shared = Arc::clone(shared);
    let worker_shard = Arc::clone(&shard);
    let submitted = shard.executor.submit(move |cancel| {
        compute_detect_reply(&worker_shared, &worker_shard, &data, as_of, top_k, cancel)
    });
    let stats = &shared.stats;
    let handle = match submitted {
        Ok(h) => h,
        Err(SubmitRefusal::Saturated { in_flight, limit }) => {
            stats.telemetry.inc(stats.rejected_queue_full);
            stats.telemetry.inc(shard.stats.rejected_queue_full);
            return error_reply(&VnetError::QueueFull { in_flight, limit });
        }
        Err(SubmitRefusal::ShuttingDown) => {
            return error_reply(&VnetError::ShuttingDown);
        }
    };
    stats.telemetry.inc(stats.requests);
    stats.telemetry.inc(stats.admitted);
    stats.telemetry.inc(shard.stats.requests);
    shared.obs.inc_by("serve.detect_requests", &[], 1);
    let budget = Duration::from_millis(shared.config.request_timeout_millis);
    match handle.wait_timeout(budget) {
        Some(reply) => reply,
        None => {
            handle.cancel();
            shared.obs.inc_by("serve.rejected{reason=timeout}", &[], 1);
            error_reply(&VnetError::Timeout { millis: shared.config.request_timeout_millis })
        }
    }
}

/// Run (or serve from the per-shard detect cache) the detection pipeline
/// as of churn day `as_of` (default: the full horizon). Runs on a shard
/// executor worker. The cache key is `(day, top_k)` — the base dataset,
/// planted workload, and churn replay are all fixed at registration, so
/// day and reply depth are the only free inputs.
fn compute_detect_reply(
    shared: &Shared,
    shard: &Shard,
    base: &SnapshotData,
    as_of: Option<u32>,
    top_k: usize,
    cancel: &CancelToken,
) -> String {
    let no_workload = || {
        error_reply(&VnetError::InvalidInput(format!(
            "snapshot '{}' has no sybil workload; register it with \"sybil\":true and churn_days",
            shard.name,
        )))
    };
    let Some(temporal) = shard.temporal() else {
        return no_workload();
    };
    let Some(sybil) = temporal.sybil.as_ref() else {
        return no_workload();
    };
    let horizon = temporal.timeline.days();
    let day = as_of.unwrap_or(horizon);
    if day > horizon {
        return error_reply(&VnetError::InvalidInput(format!(
            "as_of day {day} is beyond the churn horizon ({horizon} days)"
        )));
    }
    let envelope = |value: &CachedSection| {
        format!(
            "{{\"ok\":true,\"snapshot\":{},\"as_of\":{},\"top_k\":{},\"fingerprint\":{},\"detect\":{}}}",
            json_str(&shard.name),
            day,
            top_k,
            value.fingerprint,
            value.payload_json,
        )
    };
    if let Some(hit) = sybil.cached(day, top_k) {
        shared.stats.telemetry.inc(shared.stats.cache_hits);
        shared.stats.telemetry.inc(shard.stats.hits);
        return envelope(&hit);
    }
    if cancel.is_cancelled() {
        shared.obs.inc_by("serve.cancelled_jobs", &[], 1);
        return error_reply(&VnetError::Timeout {
            millis: shared.config.request_timeout_millis,
        });
    }
    shared.obs.inc_by("cache.misses", &[], 1);
    let (data, materialized) = match temporal.day_data(day, base) {
        Ok(resolved) => resolved,
        Err(e) => return error_reply(&e),
    };
    if materialized {
        shared.stats.telemetry.inc(shared.stats.asof_materializations);
    }
    let input = DetectInput {
        graph: &data.dataset.graph,
        daily_follows: &sybil.daily_follows[..day as usize],
    };
    let report = run_detection(&input, &DetectConfig::default(), &shared.ctx);
    let eval = evaluate(&report, &sybil.labels.sybils());
    let payload_json = render_detect_payload(&report, &eval, data.fingerprint, top_k);
    let fingerprint = fingerprint_str(&payload_json);
    let value = Arc::new(CachedSection { payload_json, fingerprint });
    sybil.insert(day, top_k, Arc::clone(&value));
    envelope(&value)
}

/// Deterministic JSON rendering of a detection run: the fit parameters,
/// campaign findings, top-`k` suspects, and the P/R evaluation against
/// the planted ground truth. Floats use Rust's shortest-round-trip
/// formatting, so the bytes are a pure function of the inputs.
fn render_detect_payload(
    report: &vnet_detect::DetectionReport,
    eval: &vnet_detect::Evaluation,
    dataset_fingerprint: u64,
    top_k: usize,
) -> String {
    let fit_out = match (report.alpha_out, report.xmin_out) {
        (Some(a), Some(x)) => format!("{{\"alpha\":{a:?},\"xmin\":{x}}}"),
        _ => "null".to_string(),
    };
    let fit_in = report
        .alpha_in
        .map(|a| format!("{{\"alpha\":{a:?}}}"))
        .unwrap_or_else(|| "null".to_string());
    let burst_days: Vec<String> = report.burst_days.iter().map(u32::to_string).collect();
    let targets: Vec<String> = report.campaign_targets.iter().map(|t| t.to_string()).collect();
    let top: Vec<String> = report
        .ranked
        .iter()
        .take(top_k)
        .map(|e| {
            format!(
                "{{\"node\":{},\"fused\":{:?},\"deviation\":{:?},\"reciprocity\":{:?},\"burst\":{:?}}}",
                e.node, e.fused, e.deviation, e.reciprocity, e.burst,
            )
        })
        .collect();
    let pr: Vec<String> =
        eval.pr_curve.iter().map(|&(r, p)| format!("[{r:?},{p:?}]")).collect();
    format!(
        "{{\"dataset_fingerprint\":{},\"fit_out\":{},\"fit_in\":{},\"burst_days\":[{}],\"campaign_targets\":[{}],\"top\":[{}],\"eval\":{{\"planted\":{},\"recall_at_planted\":{:?},\"auc\":{:?},\"pr_curve\":[{}]}}}}",
        dataset_fingerprint,
        fit_out,
        fit_in,
        burst_days.join(","),
        targets.join(","),
        top.join(","),
        eval.planted,
        eval.recall_at_planted,
        eval.auc,
        pr.join(","),
    )
}

/// One shard's status object — deterministic bytes for a quiescent shard
/// (golden-tested in `tests/tests/serve_shards.rs`).
fn shard_status_json(shard: &Shard) -> String {
    let (queued, running) = shard.executor.in_flight();
    // Snapshots registered without churn keep the exact pre-temporal
    // bytes; with churn the shard object grows a `temporal` block with
    // the structural-PELT shifts the timeline detected.
    let temporal = shard
        .temporal()
        .map(|state| {
            let shifts: Vec<String> = state
                .timeline
                .shifts()
                .iter()
                .map(|s| {
                    format!(
                        "{{\"metric\":{},\"day\":{},\"before_mean\":{:?},\"after_mean\":{:?}}}",
                        json_str(s.metric),
                        s.day,
                        s.before_mean,
                        s.after_mean,
                    )
                })
                .collect();
            format!(
                ",\"temporal\":{{\"days\":{},\"seed\":{},\"checkpoints\":{},\"shifts\":[{}]}}",
                state.timeline.days(),
                state.seed,
                state.timeline.checkpoint_count(),
                shifts.join(","),
            )
        })
        .unwrap_or_default();
    format!(
        "{{\"snapshot\":{},\"fingerprint\":{},\"workers\":{},\"queued\":{},\"running\":{},\"open_flights\":{},\"cache_entries\":{}{}}}",
        json_str(&shard.name),
        shard.data().fingerprint,
        shard.executor.workers(),
        queued,
        running,
        shard.flights.open_count(),
        shard.cache.lock().expect("cache lock").len(),
        temporal,
    )
}

fn handle_status(shared: &Shared, snapshot: Option<&str>) -> String {
    let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
    if let Some(name) = snapshot {
        // Shard-targeted status: just that shard's detail.
        return match shared.shards.get(name) {
            Some(shard) => format!(
                "{{\"ok\":true,\"shard\":{},\"shutting_down\":{}}}",
                shard_status_json(&shard),
                shutting_down,
            ),
            None => error_reply(&VnetError::UnknownSnapshot(name.to_string())),
        };
    }
    let names: Vec<String> = shared.shards.names().iter().map(|k| json_str(k)).collect();
    let shards = shared.shards.all();
    let (mut queued, mut running, mut flights, mut cache_entries) = (0, 0, 0, 0);
    let mut shard_parts = Vec::with_capacity(shards.len());
    for shard in &shards {
        let (q, r) = shard.executor.in_flight();
        queued += q;
        running += r;
        flights += shard.flights.open_count();
        cache_entries += shard.cache.lock().expect("cache lock").len();
        shard_parts.push(shard_status_json(shard));
    }
    // With self-monitoring on, the global status carries the ring size
    // and any PELT-flagged regime shifts; without it the reply is
    // byte-identical to the pre-monitor protocol.
    let self_monitor = shared
        .monitor
        .as_ref()
        .map(|m| format!(",\"self_monitor\":{}", m.status_json()))
        .unwrap_or_default();
    format!(
        "{{\"ok\":true,\"snapshots\":[{}],\"in_flight\":{},\"queued\":{},\"open_flights\":{},\"cache_entries\":{},\"admission_clients\":{},\"shutting_down\":{}{},\"shards\":[{}]}}",
        names.join(","),
        running,
        queued,
        flights,
        cache_entries,
        shared.admission.as_ref().map(|a| a.clients()).unwrap_or(0),
        shutting_down,
        self_monitor,
        shard_parts.join(","),
    )
}

/// Does this canonical metric key (`name{k=v,…}`) carry a
/// `shard=<name>` label?
fn has_shard_label(key: &str, shard: &str) -> bool {
    let Some(open) = key.find('{') else { return false };
    let labels = &key[open + 1..key.len() - 1];
    labels.split(',').any(|kv| {
        kv.strip_prefix("shard=").is_some_and(|v| v == shard)
    })
}

/// Snapshot the merged registry into counter/gauge maps, optionally
/// filtered to one shard's labelled series. Shared by the `metrics`
/// reply and the `watch` delta stream.
pub(crate) fn metric_maps(
    shared: &Shared,
    snapshot: Option<&str>,
) -> (
    std::collections::BTreeMap<String, u64>,
    std::collections::BTreeMap<String, f64>,
) {
    let metrics = shared.obs.metrics();
    let keep = |k: &str| match snapshot {
        Some(name) => has_shard_label(k, name),
        None => true,
    };
    let counters = metrics.counters().into_iter().filter(|(k, _)| keep(k)).collect();
    let gauges = metrics.gauges().into_iter().filter(|(k, _)| keep(k)).collect();
    (counters, gauges)
}

fn handle_metrics(shared: &Shared, snapshot: Option<&str>, format: MetricsFormat) -> String {
    if let Some(name) = snapshot {
        if shared.shards.get(name).is_none() {
            return error_reply(&VnetError::UnknownSnapshot(name.to_string()));
        }
    }
    if let MetricsFormat::Prom = format {
        // Prometheus text exposition, JSON-escaped into a body field so
        // the reply stays one line on the wire. Histograms are included
        // here (the JSON format predates them and keeps its exact
        // shape).
        let metrics = shared.obs.metrics();
        let keep = |k: &str| match snapshot {
            Some(name) => has_shard_label(k, name),
            None => true,
        };
        let counters = metrics.counters().into_iter().filter(|(k, _)| keep(k)).collect();
        let gauges = metrics.gauges().into_iter().filter(|(k, _)| keep(k)).collect();
        let histograms = metrics.histograms().into_iter().filter(|(k, _)| keep(k)).collect();
        let body = render_prometheus_parts(&counters, &gauges, &histograms);
        return format!("{{\"ok\":true,\"format\":\"prom\",\"body\":{}}}", json_str(&body));
    }
    // The metric maps are BTreeMaps: sorted keys, so the reply is
    // deterministic given the same recording state.
    let (counters, gauges) = metric_maps(shared, snapshot);
    let counters: Vec<String> =
        counters.iter().map(|(k, v)| format!("{}:{}", json_str(k), v)).collect();
    let gauges: Vec<String> =
        gauges.iter().map(|(k, v)| format!("{}:{:?}", json_str(k), v)).collect();
    format!(
        "{{\"ok\":true,\"counters\":{{{}}},\"gauges\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_label_matching_is_exact() {
        assert!(has_shard_label("serve.queue_depth{shard=a}", "a"));
        assert!(has_shard_label("serve.rejected{reason=queue_full,shard=a}", "a"));
        assert!(!has_shard_label("serve.queue_depth{shard=ab}", "a"));
        assert!(!has_shard_label("serve.queue_depth{shard=a}", "ab"));
        assert!(!has_shard_label("serve.queue_depth", "a"));
        assert!(!has_shard_label("serve.rejected{reason=shard}", "shard"));
    }
}
