//! # vnet-serve — the analysis service
//!
//! A long-running, zero-external-dependency analysis service over
//! [`std::net::TcpListener`]. Clients register [`verified_net::Dataset`] snapshots and
//! request paper sections over a line-delimited JSON protocol; the server
//! runs analysis on a shared [`vnet_par::ParPool`] via one
//! [`vnet_ctx::AnalysisCtx`], and serves production traffic through three
//! gates: per-client token-bucket **admission control**, a **shard
//! router**, and each shard's bounded-queue **executor**.
//!
//! Because every section is computed through
//! [`verified_net::run_analysis_section`] — the same entrypoint the batch
//! driver composes — a cached reply is **byte-identical** to a fresh
//! computation at any thread count, and the per-section fingerprints a
//! reply embeds are directly comparable to the `section.<id>` fingerprints
//! in a batch run's manifest.
//!
//! ## Execution model
//!
//! Requests are framed by an incremental [`LineReader`] that survives
//! socket read timeouts without discarding buffered partial requests, so
//! arbitrarily slow writers are safe. Each registered snapshot is a
//! **shard** with its own fixed worker-pool [`Executor`] (bounded queue,
//! `Condvar` scheduling — refusals get a structured `queue_full` reply),
//! its own LRU result cache, and its own single-flight map: one leader
//! computes each section, every coalesced waiter fans out the same bytes
//! (`serve.coalesced` counts them), and a hot snapshot saturates only its
//! own queue. In front of the router sits an optional [`Admission`] gate
//! that mirrors `twittersim`'s rate-limit windows per client id: over
//! quota means a `rate_limited` reply with a deterministic
//! `retry_after_ms` hint, and rejected requests consume no quota.
//! Shutdown drains every shard's executor on its quiescence condvar and
//! joins every worker and connection thread — the server leaks no
//! threads.
//!
//! ## Wire protocol
//!
//! One JSON object per line in each direction (see `docs/API.md` for the
//! full schema). The current envelope is versioned — `{"v":1,"cmd":...}`
//! — and v1 rejects unknown keys with a structured `invalid_input`
//! error; unversioned lines still work but their replies carry a
//! `deprecation` note. Requests carry a `"cmd"` key:
//!
//! | cmd        | fields                                                    |
//! |------------|-----------------------------------------------------------|
//! | `register` | `name`, plus `dir` (saved bundle) or `scale` (synthesize);|
//! |            | optional `churn_days`/`churn_seed`/`churn_shock_day` build|
//! |            | a deterministic churn timeline for time travel            |
//! | `analyze`  | `snapshot`, `sections` (ids), optional `options`,         |
//! |            | `client`, and `as_of` (churn day to time-travel to)       |
//! | `status`   | optional `snapshot` (one shard's detail)                  |
//! | `metrics`  | optional `snapshot`, optional `format` (`json`\|`prom`)   |
//! | `watch`    | optional `snapshot`, `interval_ms`, `frames`              |
//! | `shutdown` | — (drains in-flight work, then stops accepting)           |
//!
//! Replies are `{"ok":true,...}` or
//! `{"ok":false,"error":{"code":"...","message":"..."}}` with codes from
//! [`verified_net::VnetError::code`]; `rate_limited` errors additionally
//! carry a `retry_after_ms` field. `metrics` with `"format":"prom"`
//! wraps a Prometheus text exposition in the reply's `body` field;
//! `watch` holds the connection and streams periodic metric-delta
//! frames (see `docs/OBSERVABILITY.md`).
//!
//! ## Observability
//!
//! The request hot path records into a sharded lock-free
//! [`vnet_obs::Telemetry`] slab — per-stripe atomics, no locks, no
//! string formatting — which merges deterministically into the
//! `Registry` that `metrics`/`manifest` read. Five wall-clock stage
//! histograms (`framing` → `admission` → `queue` → `execute` → `write`)
//! break request latency down; their `*wall_micros` names are scrubbed
//! from deterministic manifests. An opt-in [`SelfMonitorConfig`]
//! samples queue depth, running jobs, cache hit rate, and connection
//! count into a ring and runs `vnet-timeseries` PELT change-point
//! detection over them on every `status` request — the server dogfoods
//! the paper's regime-shift analysis on itself.
//!
//! ## Example
//!
//! ```no_run
//! use vnet_serve::{Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.local_addr());
//! handle.join();
//! ```

#![warn(missing_docs)]

mod admission;
mod cache;
mod conn;
mod executor;
mod flight;
mod framing;
mod monitor;
mod protocol;
mod server;
mod shards;
mod stats;

pub use admission::{Admission, AdmissionClock, AdmissionPolicy, RateWindow};
pub use cache::{CacheKey, CachedSection, ResultCache};
pub use executor::{CancelToken, Executor, ExecutorTelemetry, JobHandle, SubmitRefusal};
pub use framing::{Frame, LineReader, MAX_LINE_BYTES};
pub use monitor::{MonitorAlert, MonitorSample, SelfMonitorConfig};
pub use protocol::{
    parse_request, ChurnSpec, MetricsFormat, ParsedRequest, RegisterSource, Request,
    DEPRECATION_NOTE, MAX_CHURN_DAYS, PROTOCOL_VERSION, WATCH_MAX_FRAMES,
    WATCH_MAX_INTERVAL_MS, WATCH_MIN_INTERVAL_MS,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::STAGES;
