//! # vnet-serve — the analysis service
//!
//! A long-running, zero-external-dependency analysis service over
//! [`std::net::TcpListener`]. Clients register [`verified_net::Dataset`] snapshots and
//! request paper sections over a line-delimited JSON protocol; the server
//! schedules analysis on the shared [`vnet_par::ParPool`] via one
//! [`vnet_ctx::AnalysisCtx`], bounds concurrent work with an in-flight
//! limit and per-request timeouts, and answers repeat queries from a
//! content-addressed result cache keyed by
//! `(dataset fingerprint, options fingerprint, section)`.
//!
//! Because every section is computed through
//! [`verified_net::run_analysis_section`] — the same entrypoint the batch
//! driver composes — a cached reply is **byte-identical** to a fresh
//! computation at any thread count, and the per-section fingerprints a
//! reply embeds are directly comparable to the `section.<id>` fingerprints
//! in a batch run's manifest.
//!
//! ## Execution model
//!
//! Requests are framed by an incremental [`LineReader`] that survives
//! socket read timeouts without discarding buffered partial requests, so
//! arbitrarily slow writers are safe. `analyze` work runs on a fixed
//! worker-pool [`Executor`] (bounded queue, `Condvar` scheduling —
//! refusals get a structured `queue_full` reply), and concurrent
//! identical section computations are **single-flighted**: one leader
//! computes, every coalesced waiter fans out the same bytes
//! (`serve.coalesced` counts them). Shutdown drains the executor on its
//! quiescence condvar and joins every worker and connection thread — the
//! server leaks no threads.
//!
//! ## Wire protocol
//!
//! One JSON object per line in each direction (see `docs/API.md` for the
//! full schema). Requests carry a `"cmd"` key:
//!
//! | cmd        | fields                                                   |
//! |------------|----------------------------------------------------------|
//! | `register` | `name`, plus `dir` (saved bundle) or `scale` (synthesize)|
//! | `analyze`  | `snapshot`, `sections` (ids), optional `options`         |
//! | `status`   | —                                                        |
//! | `metrics`  | —                                                        |
//! | `shutdown` | — (drains in-flight work, then stops accepting)          |
//!
//! Replies are `{"ok":true,...}` or
//! `{"ok":false,"error":{"code":"...","message":"..."}}` with codes from
//! [`verified_net::VnetError::code`].
//!
//! ## Example
//!
//! ```no_run
//! use vnet_serve::{Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.local_addr());
//! handle.join();
//! ```

#![warn(missing_docs)]

mod cache;
mod conn;
mod executor;
mod flight;
mod framing;
mod protocol;
mod server;

pub use cache::{CacheKey, CachedSection, ResultCache};
pub use executor::{CancelToken, Executor, JobHandle, SubmitRefusal};
pub use framing::{Frame, LineReader, MAX_LINE_BYTES};
pub use protocol::{parse_request, RegisterSource, Request};
pub use server::{Server, ServerConfig, ServerHandle};
