//! Single-flight coalescing for section computations.
//!
//! N concurrent `analyze` requests for the same uncached
//! `(dataset, options, section)` key should cost one computation, not N:
//! the first worker to miss the cache becomes the **leader** and computes;
//! every other worker that arrives while the flight is open becomes a
//! **follower** and blocks on the flight's condition variable until the
//! leader publishes the bytes. Followers then fan the identical payload
//! out to their own clients — byte-identical by construction, since they
//! share the leader's `Arc<CachedSection>`.
//!
//! Flights are removed from the table before completion is signalled, so
//! an errored computation is retried by the next request instead of being
//! negatively cached. A leader that panics completes its flight through
//! [`FlightGuard`]'s `Drop`, so followers can never hang on a dead leader.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::cache::{CacheKey, CachedSection};

/// What a follower receives: the published payload, or the leader's
/// serialized error reply (sent verbatim to the follower's client too).
pub(crate) type SectionOutcome = Result<Arc<CachedSection>, String>;

#[derive(Debug)]
pub(crate) struct Flight {
    outcome: Mutex<Option<SectionOutcome>>,
    published: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self { outcome: Mutex::new(None), published: Condvar::new() }
    }

    /// Block until the leader publishes. Leaders always publish in bounded
    /// time (a section computation, or a panic caught by [`FlightGuard`]),
    /// so this wait needs no timeout of its own — the *request* deadline
    /// is enforced by the connection thread holding the job handle.
    pub(crate) fn wait(&self) -> SectionOutcome {
        let mut outcome = self.outcome.lock().expect("flight outcome lock");
        while outcome.is_none() {
            outcome = self.published.wait(outcome).expect("flight outcome lock");
        }
        outcome.clone().expect("checked above")
    }

    fn publish(&self, result: SectionOutcome) {
        *self.outcome.lock().expect("flight outcome lock") = Some(result);
        self.published.notify_all();
    }
}

/// Role handed to a worker that missed the cache.
pub(crate) enum Role {
    /// Compute the section and publish through the returned guard.
    Leader(FlightGuard),
    /// Wait on the flight for the leader's outcome.
    Follower(Arc<Flight>),
}

/// The open-flights table, keyed like the result cache.
#[derive(Debug, Default)]
pub(crate) struct FlightMap {
    open: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

impl FlightMap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Join the open flight for `key`, or open one and lead it.
    pub(crate) fn begin(self: &Arc<Self>, key: CacheKey) -> Role {
        let mut open = self.open.lock().expect("flight map lock");
        if let Some(flight) = open.get(&key) {
            return Role::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        open.insert(key, Arc::clone(&flight));
        Role::Leader(FlightGuard { map: Arc::clone(self), key, flight, published: false })
    }

    fn close(&self, key: &CacheKey) {
        self.open.lock().expect("flight map lock").remove(key);
    }

    /// Open flights right now (diagnostics).
    pub(crate) fn open_count(&self) -> usize {
        self.open.lock().expect("flight map lock").len()
    }
}

/// Leadership of one flight. Publishing closes the flight; dropping
/// without publishing (a panicking leader) publishes an internal-error
/// outcome so followers never hang.
pub(crate) struct FlightGuard {
    map: Arc<FlightMap>,
    key: CacheKey,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard {
    /// Publish the leader's outcome to every follower and close the
    /// flight. Closing happens first, so a request arriving after an
    /// error starts a fresh flight instead of reading a stale failure.
    pub(crate) fn publish(mut self, result: SectionOutcome) {
        self.map.close(&self.key);
        self.flight.publish(result);
        self.published = true;
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.published {
            self.map.close(&self.key);
            self.flight.publish(Err(
                "{\"ok\":false,\"error\":{\"code\":\"analysis\",\"message\":\"section computation aborted\"}}"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verified_net::Section;

    fn key(section: Section) -> CacheKey {
        CacheKey { dataset: 1, options: 2, section, day: None }
    }

    fn payload(s: &str) -> Arc<CachedSection> {
        Arc::new(CachedSection { payload_json: s.to_string(), fingerprint: 7 })
    }

    #[test]
    fn followers_share_the_leaders_bytes() {
        let map = Arc::new(FlightMap::new());
        let leader = match map.begin(key(Section::Basic)) {
            Role::Leader(g) => g,
            Role::Follower(_) => panic!("first arrival must lead"),
        };
        let followers: Vec<_> = (0..3)
            .map(|_| match map.begin(key(Section::Basic)) {
                Role::Follower(f) => {
                    std::thread::spawn(move || f.wait().expect("payload").payload_json.clone())
                }
                Role::Leader(_) => panic!("flight already open"),
            })
            .collect();
        leader.publish(Ok(payload("bytes")));
        for f in followers {
            assert_eq!(f.join().expect("follower thread"), "bytes");
        }
        assert_eq!(map.open_count(), 0, "flight not closed");
    }

    #[test]
    fn errors_are_published_but_not_sticky() {
        let map = Arc::new(FlightMap::new());
        let leader = match map.begin(key(Section::Degrees)) {
            Role::Leader(g) => g,
            Role::Follower(_) => panic!("first arrival must lead"),
        };
        let follower = match map.begin(key(Section::Degrees)) {
            Role::Follower(f) => f,
            Role::Leader(_) => panic!("flight already open"),
        };
        leader.publish(Err("{\"ok\":false}".to_string()));
        assert_eq!(follower.wait(), Err("{\"ok\":false}".to_string()));
        // The error closed the flight: the next arrival leads a fresh one.
        assert!(matches!(map.begin(key(Section::Degrees)), Role::Leader(_)));
    }

    #[test]
    fn dropped_leader_frees_followers() {
        let map = Arc::new(FlightMap::new());
        let leader = match map.begin(key(Section::Eigen)) {
            Role::Leader(g) => g,
            Role::Follower(_) => panic!("first arrival must lead"),
        };
        let follower = match map.begin(key(Section::Eigen)) {
            Role::Follower(f) => f,
            Role::Leader(_) => panic!("flight already open"),
        };
        drop(leader); // simulated leader panic
        let outcome = follower.wait();
        assert!(outcome.expect_err("drop publishes an error").contains("aborted"));
        assert_eq!(map.open_count(), 0);
    }
}
