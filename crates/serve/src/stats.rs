//! Pre-registered telemetry handles for the serve hot path.
//!
//! Every metric the request path records per-request lives here as an
//! interned [`Telemetry`] handle, registered once at server (or shard)
//! construction — the hot path does atomic adds through the handles and
//! never formats a label string or takes the registry mutex (the old
//! path did both on every request; see `vnet_obs::telemetry`). Cold-path
//! metrics — connection lifecycle, cache misses (amortized by a full
//! section computation), drains, panics — stay on the plain [`Obs`]
//! registry calls where the lock cost is irrelevant.
//!
//! The split is invisible to readers: the server attaches its
//! [`Telemetry`] to its [`Obs`], so every snapshot (`metrics`, `status`,
//! manifests, prom exposition) sees one merged registry with the same
//! canonical keys the old code wrote.
//!
//! ## Staged latency
//!
//! The request path is instrumented as five wall-clock stages, each a
//! power-of-two-bucket histogram `serve.stage_wall_micros{stage=…}`:
//!
//! | stage       | measures                                              |
//! |-------------|-------------------------------------------------------|
//! | `framing`   | first byte of a request line → complete line          |
//! | `admission` | token-bucket `try_admit` (the front-door gate)        |
//! | `queue`     | executor submit → a worker picks the job up           |
//! | `execute`   | worker picks up → reply string ready                  |
//! | `write`     | reply bytes → socket flushed                          |
//!
//! The metric name ends in `wall_micros`, so these histograms are
//! scrubbed from `RunManifest::deterministic_view` by the established
//! convention — wall-clock is for profiling, never for fingerprints.
//! `framing` and `write` are recorded *after* the reply is flushed, so a
//! `metrics` reply never includes its own request's samples.

use std::sync::Arc;
use std::time::Instant;

use vnet_obs::{pow2_buckets, CounterId, HistogramId, Telemetry, DEFAULT_BUCKETS};

/// Bucket exponent for stage latencies: 2⁰ … 2²⁶ µs spans 1 µs to ~67 s
/// with ≤ 2× relative error, HDR-style.
const STAGE_BUCKET_MAX_EXP: u32 = 26;

/// The five stages of the request path, in path order. Each has a
/// `serve.stage_wall_micros{stage=…}` histogram; load tools iterate
/// this to pull the per-stage breakdown out of a `metrics` reply.
pub const STAGES: [&str; 5] = ["framing", "admission", "queue", "execute", "write"];

/// Global (unlabelled) hot-path handles plus the stage histograms.
pub(crate) struct ServeStats {
    pub(crate) telemetry: Arc<Telemetry>,
    /// `serve.requests` — admitted analyze requests (global).
    pub(crate) requests: CounterId,
    /// `serve.admitted` — same population, kept for the admission tests'
    /// contract.
    pub(crate) admitted: CounterId,
    /// `serve.rejected{reason=rate_limited}`.
    pub(crate) rejected_rate_limited: CounterId,
    /// `serve.rejected{reason=queue_full}` (global; the per-shard twin
    /// lives in [`ShardStats`]).
    pub(crate) rejected_queue_full: CounterId,
    /// `cache.hits` (global).
    pub(crate) cache_hits: CounterId,
    /// `serve.asof_cache_hits` — section-cache hits served for an
    /// `as_of` (time-travel) request; the delta-aware cache's win metric.
    pub(crate) asof_cache_hits: CounterId,
    /// `serve.asof_materializations` — day graphs actually replayed and
    /// materialized (the cost the day cache and section cache amortize).
    pub(crate) asof_materializations: CounterId,
    /// `serve.coalesced` (global).
    pub(crate) coalesced: CounterId,
    /// `serve.retry_after_ms` — decade buckets, matching the registry's
    /// defaults so the manifest histogram is byte-identical to the old
    /// recording path (values are integral milliseconds: integer sums
    /// equal the f64 sums exactly).
    pub(crate) retry_after_ms: HistogramId,
    pub(crate) stage_framing: HistogramId,
    pub(crate) stage_admission: HistogramId,
    pub(crate) stage_write: HistogramId,
}

impl ServeStats {
    /// Register every global handle on `telemetry`.
    pub(crate) fn new(telemetry: Arc<Telemetry>) -> Self {
        let stage = |name: &str| {
            telemetry.histogram(
                "serve.stage_wall_micros",
                &[("stage", name)],
                &pow2_buckets(STAGE_BUCKET_MAX_EXP),
            )
        };
        Self {
            requests: telemetry.counter("serve.requests", &[]),
            admitted: telemetry.counter("serve.admitted", &[]),
            rejected_rate_limited: telemetry
                .counter("serve.rejected", &[("reason", "rate_limited")]),
            rejected_queue_full: telemetry.counter("serve.rejected", &[("reason", "queue_full")]),
            cache_hits: telemetry.counter("cache.hits", &[]),
            asof_cache_hits: telemetry.counter("serve.asof_cache_hits", &[]),
            asof_materializations: telemetry.counter("serve.asof_materializations", &[]),
            coalesced: telemetry.counter("serve.coalesced", &[]),
            retry_after_ms: telemetry.histogram("serve.retry_after_ms", &[], &DEFAULT_BUCKETS),
            stage_framing: stage("framing"),
            stage_admission: stage("admission"),
            stage_write: stage("write"),
            telemetry,
        }
    }

    /// Per-shard labelled handles for a (re-)registered shard; idempotent
    /// because telemetry registration dedups by canonical key.
    pub(crate) fn shard_stats(&self, shard: &str) -> ShardStats {
        let labels: &[(&str, &str)] = &[("shard", shard)];
        ShardStats {
            requests: self.telemetry.counter("serve.requests", labels),
            hits: self.telemetry.counter("cache.hits", labels),
            coalesced: self.telemetry.counter("serve.coalesced", labels),
            rejected_queue_full: self
                .telemetry
                .counter("serve.rejected", &[("reason", "queue_full"), ("shard", shard)]),
        }
    }

    /// Record a stage duration measured from `started`.
    pub(crate) fn observe_stage(&self, stage: &HistogramId, started: Instant) {
        self.telemetry.observe(stage, started.elapsed().as_micros() as u64);
    }
}

/// One shard's labelled hot-path counters (held inside the `Shard`).
pub(crate) struct ShardStats {
    /// `serve.requests{shard=…}`.
    pub(crate) requests: CounterId,
    /// `cache.hits{shard=…}`.
    pub(crate) hits: CounterId,
    /// `serve.coalesced{shard=…}`.
    pub(crate) coalesced: CounterId,
    /// `serve.rejected{reason=queue_full,shard=…}`.
    pub(crate) rejected_queue_full: CounterId,
}
