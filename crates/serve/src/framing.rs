//! Incremental line framing for the wire protocol.
//!
//! The service reads requests from sockets carrying a short read timeout
//! (the timeout tick is how a connection thread notices shutdown without
//! blocking forever). The old implementation handed the socket to
//! [`std::io::BufRead::read_line`], which appends into its output `String`
//! as bytes arrive — so when the timeout fired mid-request, the caller's
//! retry loop cleared the string and silently discarded every byte a slow
//! client had already written. [`LineReader`] fixes that class of bug by
//! owning the partial-line buffer itself: a timeout surfaces as
//! [`Frame::Idle`] and the buffered prefix stays intact until the
//! newline arrives, however many ticks that takes.

use std::io::{ErrorKind, Read};
use std::time::Instant;

/// Upper bound on one request line. A peer that streams this much without
/// a newline is not speaking the protocol; the reader reports an error
/// and the connection closes rather than buffering unboundedly.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// One framing step: what [`LineReader::next_frame`] found.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete request line, newline stripped.
    Line(String),
    /// The read timed out before a newline arrived. Any partial line read
    /// so far is retained; call again to keep waiting.
    Idle,
    /// The peer closed the stream (any unterminated trailing fragment is
    /// discarded — a line is only a request once its newline arrives).
    Closed,
}

/// A line framer that survives read timeouts without losing buffered
/// partial requests.
#[derive(Debug)]
pub struct LineReader<R> {
    source: R,
    /// Bytes received but not yet returned: zero or more complete lines
    /// followed by at most one partial line.
    buf: Vec<u8>,
    /// Prefix of `buf` already scanned for a newline, so each new chunk is
    /// scanned once.
    scanned: usize,
    /// When the line currently being assembled started: set on the
    /// empty→non-empty buffer transition, restarted when a drained line
    /// leaves pipelined residue behind. Feeds the `framing` stage
    /// histogram — the time a request spent dribbling in before it could
    /// be dispatched.
    line_started: Option<Instant>,
    /// Assembly duration of the most recently returned [`Frame::Line`].
    last_line_micros: Option<u64>,
}

impl<R: Read> LineReader<R> {
    /// Frame lines out of `source`. The source's read timeout (if any)
    /// controls how often [`Frame::Idle`] is reported.
    pub fn new(source: R) -> Self {
        Self { source, buf: Vec::new(), scanned: 0, line_started: None, last_line_micros: None }
    }

    /// Bytes currently buffered waiting for a newline (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// How long the most recent [`Frame::Line`] took to assemble, from
    /// its first buffered byte to its newline. Consumed on read (the next
    /// call returns `None` until another line completes), so a caller
    /// can't double-record a frame. For a pipelined request whose bytes
    /// were already buffered when the previous line drained, the clock
    /// starts at that drain — near-zero, which is accurate: the socket
    /// spent no extra time assembling it.
    pub fn take_last_line_micros(&mut self) -> Option<u64> {
        self.last_line_micros.take()
    }

    /// Read until one of: a complete line, a timeout tick, end of stream,
    /// or a hard I/O error.
    pub fn next_frame(&mut self) -> std::io::Result<Frame> {
        loop {
            if let Some(pos) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let end = self.scanned + pos;
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                self.last_line_micros =
                    Some(self.line_started.map_or(0, |t| t.elapsed().as_micros() as u64));
                // Pipelined residue already belongs to the next line.
                self.line_started =
                    if self.buf.is_empty() { None } else { Some(Instant::now()) };
                return Ok(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > MAX_LINE_BYTES {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    "request line exceeds MAX_LINE_BYTES",
                ));
            }
            let mut chunk = [0u8; 4096];
            match self.source.read(&mut chunk) {
                Ok(0) => return Ok(Frame::Closed),
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.line_started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // The partial line (if any) stays in `buf` — this is
                    // the whole point of the reader.
                    return Ok(Frame::Idle);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted source: each entry is either bytes to deliver or a
    /// timeout to raise, exactly the shape a slow client produces.
    struct Script {
        steps: std::vec::IntoIter<Result<Vec<u8>, ErrorKind>>,
    }

    impl Script {
        fn new(steps: Vec<Result<&str, ErrorKind>>) -> Self {
            Self {
                steps: steps
                    .into_iter()
                    .map(|s| s.map(|t| t.as_bytes().to_vec()))
                    .collect::<Vec<_>>()
                    .into_iter(),
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            match self.steps.next() {
                None => Ok(0),
                Some(Ok(bytes)) => {
                    out[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(kind)) => Err(std::io::Error::new(kind, "scripted")),
            }
        }
    }

    #[test]
    fn partial_line_survives_timeout_ticks() {
        // The slow-client scenario: a request split across three read
        // timeouts must still parse as one line.
        let mut r = LineReader::new(Script::new(vec![
            Ok("{\"cmd\":"),
            Err(ErrorKind::WouldBlock),
            Ok("\"sta"),
            Err(ErrorKind::TimedOut),
            Ok("tus\"}\n"),
        ]));
        assert_eq!(r.next_frame().expect("frame"), Frame::Idle);
        assert_eq!(r.buffered(), 7, "partial bytes were dropped");
        assert_eq!(r.next_frame().expect("frame"), Frame::Idle);
        assert_eq!(r.buffered(), 11, "partial bytes were dropped");
        assert_eq!(
            r.next_frame().expect("frame"),
            Frame::Line("{\"cmd\":\"status\"}".to_string())
        );
        assert_eq!(r.next_frame().expect("frame"), Frame::Closed);
    }

    #[test]
    fn pipelined_lines_come_out_one_at_a_time() {
        let mut r = LineReader::new(Script::new(vec![Ok("a\nbb\r\nccc"), Ok("\n")]));
        assert_eq!(r.next_frame().expect("frame"), Frame::Line("a".to_string()));
        assert_eq!(r.next_frame().expect("frame"), Frame::Line("bb".to_string()));
        assert_eq!(r.next_frame().expect("frame"), Frame::Line("ccc".to_string()));
        assert_eq!(r.next_frame().expect("frame"), Frame::Closed);
    }

    #[test]
    fn line_assembly_time_is_tracked_and_consumed() {
        let mut r = LineReader::new(Script::new(vec![Ok("a\nb"), Ok("b\n")]));
        assert!(matches!(r.next_frame().expect("frame"), Frame::Line(_)));
        assert!(r.take_last_line_micros().is_some(), "first line untimed");
        assert_eq!(r.take_last_line_micros(), None, "sample not consumed on read");
        assert!(matches!(r.next_frame().expect("frame"), Frame::Line(_)));
        assert!(r.take_last_line_micros().is_some(), "pipelined line untimed");
    }

    #[test]
    fn eof_discards_unterminated_fragment() {
        let mut r = LineReader::new(Script::new(vec![Ok("no newline")]));
        assert_eq!(r.next_frame().expect("frame"), Frame::Closed);
    }

    #[test]
    fn oversized_line_is_an_error_not_unbounded_memory() {
        struct Firehose;
        impl Read for Firehose {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                out.fill(b'x');
                Ok(out.len())
            }
        }
        let mut r = LineReader::new(Firehose);
        let err = loop {
            match r.next_frame() {
                Ok(Frame::Idle) => continue,
                Ok(other) => panic!("firehose produced {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }
}
