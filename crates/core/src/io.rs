//! Dataset persistence: checkpoint a crawled dataset to disk and reload
//! it without re-synthesizing.
//!
//! The paper's authors crawled once (July 2018) and analyzed for months;
//! a downstream user of this library does the same — synthesize or crawl
//! once, `save` the bundle, and iterate on analyses against `load`.
//!
//! Layout of a dataset directory:
//!
//! ```text
//! <dir>/graph.vng         — binary CSR graph (vnet-graph VNG1 format)
//! <dir>/profiles.json     — profiles, aligned with node ids
//! <dir>/activity.json     — daily series + start date
//! ```

use crate::dataset::Dataset;
use crate::error::VnetError;
use serde::{Deserialize, Serialize};
use std::path::Path;
use vnet_timeseries::Date;
use vnet_twittersim::UserProfile;

#[derive(Serialize, Deserialize)]
struct ActivityBundle {
    start: Date,
    values: Vec<f64>,
}

/// Save `dataset` into `dir` (created if missing).
pub fn save_dataset<P: AsRef<Path>>(dataset: &Dataset, dir: P) -> crate::error::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    vnet_graph::io::save(&dataset.graph, dir.join("graph.vng"))?;
    let profiles = serde_json::to_vec(&dataset.profiles)?;
    std::fs::write(dir.join("profiles.json"), profiles)?;
    let activity = serde_json::to_vec(&ActivityBundle {
        start: dataset.activity_start,
        values: dataset.activity.clone(),
    })?;
    std::fs::write(dir.join("activity.json"), activity)?;
    Ok(())
}

/// Load a dataset bundle from `dir`.
pub fn load_dataset<P: AsRef<Path>>(dir: P) -> crate::error::Result<Dataset> {
    let dir = dir.as_ref();
    let graph = vnet_graph::io::load(dir.join("graph.vng"))?;
    let profiles: Vec<UserProfile> =
        serde_json::from_slice(&std::fs::read(dir.join("profiles.json"))?)?;
    if profiles.len() != graph.node_count() {
        return Err(VnetError::Inconsistent(format!(
            "{} profiles vs {} nodes",
            profiles.len(),
            graph.node_count()
        )));
    }
    let activity: ActivityBundle =
        serde_json::from_slice(&std::fs::read(dir.join("activity.json"))?)?;
    Ok(Dataset::from_parts(graph, profiles, activity.values, activity.start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use vnet_ctx::AnalysisCtx;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("verified_net_io").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let dir = tmp_dir("roundtrip");
        save_dataset(&ds, &dir).unwrap();
        let loaded = load_dataset(&dir).unwrap();
        assert_eq!(loaded.graph, ds.graph);
        assert_eq!(loaded.profiles, ds.profiles);
        assert_eq!(loaded.activity, ds.activity);
        assert_eq!(loaded.activity_start, ds.activity_start);
        // The serve cache keys on this: a reloaded bundle must fingerprint
        // identically to the dataset that produced it.
        assert_eq!(loaded.fingerprint(), ds.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inconsistent_bundle_rejected() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let dir = tmp_dir("inconsistent");
        save_dataset(&ds, &dir).unwrap();
        // Corrupt: drop one profile.
        let mut profiles: Vec<UserProfile> =
            serde_json::from_slice(&std::fs::read(dir.join("profiles.json")).unwrap()).unwrap();
        profiles.pop();
        std::fs::write(dir.join("profiles.json"), serde_json::to_vec(&profiles).unwrap())
            .unwrap();
        assert!(matches!(load_dataset(&dir), Err(VnetError::Inconsistent(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_io_error() {
        assert!(matches!(
            load_dataset("/nonexistent/vnet/bundle"),
            Err(VnetError::Io(_)) | Err(VnetError::Graph(_))
        ));
    }
}
