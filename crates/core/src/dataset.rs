//! The analysis dataset (paper Section III) and its synthesis.

use crate::error::VnetError;
use serde::Serialize;
use vnet_ctx::AnalysisCtx;
use vnet_graph::DiGraph;
use vnet_synth::VerifiedNetConfig;
use vnet_timeseries::Date;
use vnet_twittersim::{
    ActivityConfig, ApiError, CrawlOutcome, CrawlStats, Crawler, FaultPlan, Firehose,
    RateLimitPolicy, SimClock, Society, SocietyConfig, TwitterApi, UserProfile,
};

/// How to synthesize a dataset: society scale plus crawl/firehose knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisConfig {
    /// The society (verified network + profiles).
    pub society: SocietyConfig,
    /// The activity process.
    pub activity: ActivityConfig,
    /// Rate limits faced by the crawler. Default: unlimited — the
    /// simulated-clock waits are already covered by crawler tests, and
    /// analyses only need the data. Use [`RateLimitPolicy::default`] to
    /// exercise the waiting logic.
    pub rate_limits: RateLimitPolicy,
    /// Transient API failure probability during the crawl.
    pub failure_rate: f64,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            society: SocietyConfig::default(),
            activity: ActivityConfig::default(),
            rate_limits: RateLimitPolicy::unlimited(),
            failure_rate: 0.0,
        }
    }
}

impl SynthesisConfig {
    /// A small configuration for tests and quick examples (~4k users).
    pub fn small() -> Self {
        Self { society: SocietyConfig::small(), ..Self::default() }
    }

    /// A medium configuration (~60k users, ~5M edges): large enough for
    /// memory-vs-scale benchmarks, small enough for a laptop. See
    /// `docs/SCALING.md` for the full tier table.
    pub fn medium() -> Self {
        Self { society: SocietyConfig::medium(), ..Self::default() }
    }

    /// Adjust the underlying verified-network generator.
    pub fn with_net(mut self, net: VerifiedNetConfig) -> Self {
        self.society.net = net;
        self
    }
}

/// Export the society's streaming-build memory accounting as `_bytes`
/// gauges (scrubbed from the deterministic manifest view, like all memory
/// telemetry): what the generator's arena peaked at, and what the frozen
/// CSR costs. The `graph-scale` verify lane asserts
/// `peak ≤ 1.5 × csr` from exactly these gauges.
fn export_memory_gauges(obs: &vnet_obs::Obs, society: &Society) {
    let stream = &society.network.stream;
    obs.set_gauge("graph.synth_peak_arena_bytes", &[], stream.peak_arena_bytes as f64);
    obs.set_gauge("graph.synth_csr_bytes", &[], stream.csr_bytes as f64);
    if let Some(rss) = vnet_obs::peak_rss_bytes() {
        obs.set_gauge("mem.peak_rss_bytes", &[], rss as f64);
    }
}

/// Where a [`Dataset`] came from — and, when it was crawled under fault
/// injection, how trustworthy it is. Analyses that tolerate degraded data
/// can proceed with the drift on record; ones that cannot should reject
/// anything but `Synthesized` / `FaultInjected { degraded: false, .. }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetProvenance {
    /// A clean simulated crawl (no fault plan bound).
    Synthesized,
    /// Crawled through a fault plan.
    FaultInjected {
        /// The plan seed (replays the exact crawl).
        seed: u64,
        /// `true` when the crawl ended [`CrawlOutcome::Degraded`] — the
        /// roster was still drifting when the pass budget ran out.
        degraded: bool,
        /// Crawl passes taken.
        passes: usize,
    },
    /// Assembled from parts (e.g. loaded from disk); no crawl telemetry.
    Loaded,
}

/// The paper's analysis object: the English verified sub-graph, profiles,
/// and the year of daily activity.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The induced follow graph among English verified users.
    pub graph: DiGraph,
    /// Profile of each node (aligned with graph node ids).
    pub profiles: Vec<UserProfile>,
    /// Daily aggregate tweet counts of the cohort.
    pub activity: Vec<f64>,
    /// Date of `activity[0]`.
    pub activity_start: Date,
    /// Crawl telemetry (zeroed when the dataset was loaded, not crawled).
    pub crawl_stats: CrawlStats,
    /// How this dataset was produced.
    pub provenance: DatasetProvenance,
}

/// Headline numbers of a dataset (paper Section III / Table-free text).
#[derive(Debug, Clone, Serialize)]
pub struct DatasetSummary {
    /// English verified users.
    pub users: usize,
    /// Directed internal edges.
    pub edges: usize,
    /// Graph density.
    pub density: f64,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Maximum out-degree and its handle.
    pub max_out_degree: u64,
    /// Handle of the max out-degree user.
    pub max_out_handle: String,
    /// Isolated users.
    pub isolated: usize,
    /// Days of activity data.
    pub activity_days: usize,
}

impl Dataset {
    /// Synthesize a dataset end-to-end: generate the society, crawl it
    /// through the simulated API exactly as Section III describes, and
    /// attach the firehose activity series. The API and crawler report
    /// per-endpoint counters and spans through `ctx`, and the final
    /// [`CrawlStats`] are exported as absolute `crawl.*` counters.
    pub fn build(config: &SynthesisConfig, ctx: &AnalysisCtx) -> Dataset {
        let obs = ctx.obs_handle();
        let society = {
            let _span = obs.span("synthesize.society");
            Society::generate(&config.society)
        };
        export_memory_gauges(&obs, &society);
        let api = TwitterApi::new(
            &society,
            SimClock::new(),
            config.rate_limits,
            config.failure_rate,
        )
        .with_obs(obs.clone());
        let crawl = Crawler::new(&api)
            .with_obs(obs.clone())
            .crawl()
            .expect("simulated crawl cannot fail permanently with retries");
        obs.set_gauge("graph.csr_bytes", &[], crawl.graph.csr_bytes() as f64);
        let activity = {
            let _span = obs.span("synthesize.firehose");
            Firehose::new(&society, config.activity).activity_values()
        };
        crawl.stats.export_metrics(&obs);
        Dataset {
            graph: crawl.graph,
            profiles: crawl.profiles,
            activity,
            activity_start: config.activity.start,
            crawl_stats: crawl.stats,
            provenance: DatasetProvenance::Synthesized,
        }
    }

    /// Synthesize a dataset through a fault plan: same pipeline as
    /// [`Dataset::build`], but the API injects the plan's faults and the
    /// crawl runs the churn-hardened multi-pass
    /// [`Crawler::crawl_resumable`]. Both complete and degraded crawls are
    /// accepted — the distinction (and the plan seed, which replays the
    /// crawl exactly) is recorded in [`Dataset::provenance`]. Aborted
    /// crawls (non-healing plans can exhaust the retry budget) surface as
    /// [`VnetError::CrawlAborted`] carrying the pass count from the final
    /// checkpoint. Additionally exports the fault tally as
    /// `faults.injected{kind}` counters.
    pub fn build_with_faults(
        config: &SynthesisConfig,
        plan: &FaultPlan,
        ctx: &AnalysisCtx,
    ) -> crate::error::Result<Dataset> {
        Self::build_with_faults_inner(config, plan, ctx)
            .map_err(|(error, passes)| VnetError::CrawlAborted { passes, error })
    }

    /// Shared body of [`Dataset::build_with_faults`] and the deprecated
    /// `synthesize_with_faults*` shims (which surface the raw [`ApiError`]
    /// and drop the pass count).
    pub(crate) fn build_with_faults_inner(
        config: &SynthesisConfig,
        plan: &FaultPlan,
        ctx: &AnalysisCtx,
    ) -> Result<Dataset, (ApiError, usize)> {
        let obs = ctx.obs_handle();
        let society = {
            let _span = obs.span("synthesize.society");
            Society::generate(&config.society)
        };
        export_memory_gauges(&obs, &society);
        let api = TwitterApi::new(
            &society,
            SimClock::new(),
            config.rate_limits,
            config.failure_rate,
        )
        .with_obs(obs.clone())
        .with_faults(plan.clone());
        let crawler = Crawler::new(&api).with_obs(obs.clone());
        let (crawl, degraded, passes) = match crawler.crawl_resumable(None) {
            CrawlOutcome::Complete(ds) => {
                let passes = ds.stats.passes;
                (ds, false, passes)
            }
            CrawlOutcome::Degraded { dataset, passes, .. } => (dataset, true, passes),
            CrawlOutcome::Aborted { error, checkpoint } => {
                return Err((error, checkpoint.pass));
            }
        };
        obs.set_gauge("graph.csr_bytes", &[], crawl.graph.csr_bytes() as f64);
        let activity = {
            let _span = obs.span("synthesize.firehose");
            Firehose::new(&society, config.activity).activity_values()
        };
        crawl.stats.export_metrics(&obs);
        Ok(Dataset {
            graph: crawl.graph,
            profiles: crawl.profiles,
            activity,
            activity_start: config.activity.start,
            crawl_stats: crawl.stats,
            provenance: DatasetProvenance::FaultInjected { seed: plan.seed(), degraded, passes },
        })
    }

    /// Content fingerprint of the analysis-relevant payload: graph bytes,
    /// profiles, activity series, and start date. Crawl telemetry and
    /// provenance are deliberately excluded, so a dataset saved and
    /// reloaded from disk fingerprints identically to the crawl that
    /// produced it. This is the dataset half of the `vnet-serve` result
    /// cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut graph_bytes = Vec::new();
        vnet_graph::io::write_binary(&self.graph, &mut graph_bytes)
            .expect("in-memory graph serialization cannot fail");
        let g = vnet_obs::fingerprint_bytes(&graph_bytes);
        let p = vnet_obs::fingerprint_str(
            &serde_json::to_string(&self.profiles).expect("profiles serialize"),
        );
        let a = vnet_obs::fingerprint_str(
            &serde_json::to_string(&self.activity).expect("activity serializes"),
        );
        vnet_obs::fingerprint_str(&format!(
            "vnet-dataset-v1:{g:016x}:{p:016x}:{a:016x}:{}",
            self.activity_start
        ))
    }

    /// Assemble a dataset from parts (e.g. loaded from disk).
    pub fn from_parts(
        graph: DiGraph,
        profiles: Vec<UserProfile>,
        activity: Vec<f64>,
        activity_start: Date,
    ) -> Dataset {
        assert_eq!(graph.node_count(), profiles.len(), "profiles misaligned with graph");
        Dataset {
            graph,
            profiles,
            activity,
            activity_start,
            crawl_stats: CrawlStats::default(),
            provenance: DatasetProvenance::Loaded,
        }
    }

    /// Headline numbers.
    pub fn summary(&self) -> DatasetSummary {
        let (max_node, max_deg) =
            self.graph.max_out_degree().unwrap_or((0, 0));
        DatasetSummary {
            users: self.graph.node_count(),
            edges: self.graph.edge_count(),
            density: self.graph.density(),
            mean_out_degree: self.graph.mean_out_degree(),
            max_out_degree: max_deg as u64,
            max_out_handle: self
                .profiles
                .get(max_node as usize)
                .map(|p| p.screen_name.clone())
                .unwrap_or_default(),
            isolated: self.graph.isolated_nodes().len(),
            activity_days: self.activity.len(),
        }
    }

    /// Per-node attribute columns used across figures.
    pub fn followers(&self) -> Vec<f64> {
        self.profiles.iter().map(|p| p.followers_count as f64).collect()
    }

    /// Friend counts (global following).
    pub fn friends(&self) -> Vec<f64> {
        self.profiles.iter().map(|p| p.friends_count as f64).collect()
    }

    /// Public list memberships.
    pub fn listed(&self) -> Vec<f64> {
        self.profiles.iter().map(|p| p.listed_count as f64).collect()
    }

    /// Lifetime status counts.
    pub fn statuses(&self) -> Vec<f64> {
        self.profiles.iter().map(|p| p.statuses_count as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_small_dataset() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let s = ds.summary();
        assert!(s.users > 2_500 && s.users < 4_000, "users={}", s.users);
        assert!(s.edges > 10_000);
        assert_eq!(s.activity_days, 366);
        assert_eq!(ds.profiles.len(), ds.graph.node_count());
        // Everyone is English post-crawl.
        assert!(ds.profiles.iter().all(|p| p.lang == "en"));
    }

    #[test]
    fn summary_names_the_champion() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let s = ds.summary();
        // The global max-out-degree handle is 6BillionPeople; it is English
        // in the default seed, so it survives the filter and stays champion
        // of the sub-graph (degree may shrink, order usually holds).
        assert!(!s.max_out_handle.is_empty());
        assert!(s.max_out_degree > 0);
    }

    #[test]
    fn synthesize_with_faults_converges_and_records_provenance() {
        // A generated (healing) plan under realistic rate limits must
        // converge to the exact fault-free dataset; the only trace of the
        // faults is the provenance record and the stats tally.
        let config = SynthesisConfig {
            rate_limits: RateLimitPolicy::default(),
            ..SynthesisConfig::small()
        };
        let plan = FaultPlan::generate(7);
        let faulty = Dataset::build_with_faults(&config, &plan, &AnalysisCtx::quiet()).unwrap();
        match faulty.provenance {
            DatasetProvenance::FaultInjected { seed, degraded, passes } => {
                assert_eq!(seed, 7);
                assert!(!degraded, "healing plan must not degrade");
                assert!(passes >= 1);
            }
            other => panic!("wrong provenance: {other:?}"),
        }
        let clean = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        assert_eq!(clean.provenance, DatasetProvenance::Synthesized);
        assert_eq!(faulty.graph, clean.graph);
        assert_eq!(faulty.profiles, clean.profiles);
        // The fingerprint hashes payload, not provenance: the converged
        // faulty crawl is indistinguishable from the clean one.
        assert_eq!(faulty.fingerprint(), clean.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        assert_eq!(ds.fingerprint(), ds.fingerprint());
        let mut tweaked = ds.clone();
        tweaked.activity[0] += 1.0;
        assert_ne!(ds.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn from_parts_checks_alignment() {
        let g = DiGraph::empty(2);
        let result = std::panic::catch_unwind(|| {
            Dataset::from_parts(g, Vec::new(), Vec::new(), Date::new(2017, 6, 1))
        });
        assert!(result.is_err());
    }
}
