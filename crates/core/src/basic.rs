//! Section IV-A: basic network analysis.

use crate::dataset::Dataset;
use rand::Rng;
use serde::Serialize;
use vnet_algos::assortativity::{degree_assortativity, DegreeMode};
use vnet_algos::clustering::average_local_clustering_sampled;
use vnet_algos::components::{
    attracting_components, strongly_connected_components, weakly_connected_components,
};
use vnet_ctx::AnalysisCtx;

/// Results of the paper's basic analysis (its §III/§IV-A in-text numbers).
#[derive(Debug, Clone, Serialize)]
pub struct BasicReport {
    /// Users in the English verified sub-graph (paper: 231,246).
    pub users: usize,
    /// Directed edges (paper: 79,213,811).
    pub edges: usize,
    /// Density (paper: 0.00148).
    pub density: f64,
    /// Mean out-degree (paper: 342.55).
    pub mean_out_degree: f64,
    /// Maximum out-degree (paper: 114,815 — `@6BillionPeople`).
    pub max_out_degree: u64,
    /// Handle attaining it.
    pub max_out_handle: String,
    /// Isolated users (paper: 6,027).
    pub isolated: usize,
    /// Average local clustering coefficient, node-sampled (paper: 0.1583).
    pub clustering: f64,
    /// Degree assortativity, out→in (paper: −0.04).
    pub assortativity_out_in: f64,
    /// Size of the giant strongly connected component (paper: 224,872).
    pub giant_scc: usize,
    /// Its share of all users (paper: 97.24%).
    pub giant_scc_fraction: f64,
    /// Weakly connected components (paper: 6,251).
    pub weak_components: usize,
    /// Attracting components — sink SCCs (paper: 6,091).
    pub attracting_components: usize,
    /// Handles of the largest-in-degree celebrity sinks (the paper names
    /// `@ladbible`, `@MrRPMurphy`, `@SriSri`).
    pub top_sink_handles: Vec<String>,
}

/// Run the basic analysis. `clustering_samples` bounds the clustering
/// estimator cost (the paper's exact value is a full pass; sampling is
/// accurate to ~1/√samples). Component and clustering sub-spans are
/// recorded through `ctx`.
pub fn basic_analysis<R: Rng + ?Sized>(
    dataset: &Dataset,
    clustering_samples: usize,
    rng: &mut R,
    ctx: &AnalysisCtx,
) -> BasicReport {
    let g = &dataset.graph;
    let (scc, wcc, attracting) = {
        let _span = ctx.span("analysis.basic.components");
        (
            strongly_connected_components(g),
            weakly_connected_components(g),
            attracting_components(g),
        )
    };

    // Celebrity sinks: non-singleton-isolated attracting cores, ranked by
    // in-degree.
    let mut sinks: Vec<(u64, String)> = attracting
        .iter()
        .flat_map(|c| c.members.iter())
        .filter(|&&v| !g.is_isolated(v))
        .map(|&v| {
            (g.in_degree(v) as u64, dataset.profiles[v as usize].screen_name.clone())
        })
        .collect();
    sinks.sort_by_key(|s| std::cmp::Reverse(s.0));

    let clustering = {
        let _span = ctx.span("analysis.basic.clustering");
        average_local_clustering_sampled(g, clustering_samples, rng)
    };

    let summary = dataset.summary();
    BasicReport {
        users: summary.users,
        edges: summary.edges,
        density: summary.density,
        mean_out_degree: summary.mean_out_degree,
        max_out_degree: summary.max_out_degree,
        max_out_handle: summary.max_out_handle,
        isolated: summary.isolated,
        clustering,
        assortativity_out_in: degree_assortativity(g, DegreeMode::OutIn).unwrap_or(0.0),
        giant_scc: scc.giant_size(),
        giant_scc_fraction: scc.giant_fraction(),
        weak_components: wcc.count,
        attracting_components: attracting.len(),
        top_sink_handles: sinks.into_iter().take(5).map(|(_, h)| h).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_report_matches_paper_shape() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let mut rng = StdRng::seed_from_u64(1);
        let r = basic_analysis(&ds, 1500, &mut rng, &ctx);

        // Sparse but highly connected.
        assert!(r.density < 0.05, "density={}", r.density);
        // The 4k-node test scale pays an induction toll (the English
        // filter strands periphery nodes); at the 1:10 reproduction scale
        // the induced giant SCC sits at ~96.6% vs the paper's 97.24%.
        assert!(r.giant_scc_fraction > 0.88, "giant SCC {}", r.giant_scc_fraction);
        // Low clustering (paper: 0.1583 at 15x our scale's mean degree).
        assert!(r.clustering > 0.01 && r.clustering < 0.35, "clustering={}", r.clustering);
        // Slight dissortativity.
        assert!(
            r.assortativity_out_in < 0.02 && r.assortativity_out_in > -0.2,
            "assortativity={}",
            r.assortativity_out_in
        );
        // Attracting components ≈ isolated + celebrity sinks + a few
        // accidental sinks minted by the English filter (a node whose only
        // out-edges pointed to non-English users loses them all in the
        // induced sub-graph) — the same composition the paper reports
        // (6,091 attracting vs 6,027 isolated).
        assert!(r.attracting_components >= r.isolated);
        assert!(r.attracting_components <= r.isolated + 40);
        // Celebrity sinks got their cameo names in the top handles.
        assert!(
            r.top_sink_handles.iter().any(|h| h == "ladbible" || h == "SriSri" || h == "MrRPMurphy"),
            "sink handles: {:?}",
            r.top_sink_handles
        );
        // Weak components = isolated singletons + giant + few stragglers.
        assert!(r.weak_components >= r.isolated + 1);
        assert!(r.weak_components <= r.isolated + 30);
    }
}
