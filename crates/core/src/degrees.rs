//! Section IV-B (discrete half) and Figure 1/Figure 2: attribute
//! distributions and the out-degree power law.

use crate::dataset::Dataset;
use rand::Rng;
use serde::Serialize;
use vnet_ctx::AnalysisCtx;
use vnet_powerlaw::vuong::{vuong_discrete, Alternative};
use vnet_powerlaw::{bootstrap_pvalue_discrete, fit_discrete, DiscreteFit, FitOptions};
use vnet_stats::histogram::LogHistogram;

/// One log-binned marginal of Figure 1.
#[derive(Debug, Clone, Serialize)]
pub struct MarginalDistribution {
    /// Which attribute ("friends", "followers", "listed", "statuses").
    pub attribute: String,
    /// `(bin center, user count)` series (log-binned).
    pub series: Vec<(f64, u64)>,
    /// Users with a zero value (invisible on the log axis).
    pub zeros: u64,
}

/// Figure 1: the four profile-attribute distributions.
#[derive(Debug, Clone, Serialize)]
pub struct Figure1 {
    /// Friends, followers, list memberships and statuses marginals.
    pub marginals: Vec<MarginalDistribution>,
}

/// Build Figure 1 with `bins` log bins per attribute.
pub fn figure1(dataset: &Dataset, bins: usize) -> Figure1 {
    let attrs: [(&str, Vec<f64>); 4] = [
        ("friends", dataset.friends()),
        ("followers", dataset.followers()),
        ("listed", dataset.listed()),
        ("statuses", dataset.statuses()),
    ];
    let marginals = attrs
        .into_iter()
        .map(|(name, values)| {
            let max = values.iter().cloned().fold(1.0f64, f64::max);
            let mut hist = LogHistogram::covering(1.0, max + 1.0, bins);
            hist.extend(&values);
            MarginalDistribution {
                attribute: name.to_string(),
                series: (0..hist.bins())
                    .filter(|&i| hist.counts()[i] > 0)
                    .map(|i| (hist.center(i), hist.counts()[i]))
                    .collect(),
                zeros: hist.underflow,
            }
        })
        .collect();
    Figure1 { marginals }
}

/// Outcome of one Vuong comparison, serialized for the report.
#[derive(Debug, Clone, Serialize)]
pub struct VuongRow {
    /// Alternative hypothesis name.
    pub alternative: String,
    /// Raw log-likelihood ratio (positive favours the power law; the
    /// paper reports "significantly high 2-3 digit" values).
    pub lr: f64,
    /// Normalized Vuong statistic.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Section IV-B, discrete half + Figure 2.
#[derive(Debug, Clone, Serialize)]
pub struct DegreeReport {
    /// `(out-degree, proportion of users)` — Figure 2's series.
    pub proportion_series: Vec<(u64, f64)>,
    /// Fitted exponent (paper: 3.24).
    pub alpha: f64,
    /// Fitted cutoff (paper: 1,334).
    pub xmin: u64,
    /// KS distance of the fit.
    pub ks: f64,
    /// Tail observations.
    pub n_tail: usize,
    /// Bootstrap goodness-of-fit p (paper: 0.13; > 0.1 ⇒ plausible).
    pub gof_p: f64,
    /// Vuong tests against log-normal, exponential, Poisson (paper: all
    /// favour the power law).
    pub vuong: Vec<VuongRow>,
}

/// Run the out-degree power-law analysis, the bootstrap replicates fanned
/// out over `ctx`'s pool.
///
/// The bootstrap draws exactly one `u64` from `rng` (a per-call seed) and
/// splits an independent stream per replicate, so the p-value — and the
/// downstream `rng` state — are identical at any thread count.
pub fn degree_analysis<R: Rng + ?Sized>(
    dataset: &Dataset,
    opts: &FitOptions,
    bootstrap_reps: usize,
    rng: &mut R,
    ctx: &AnalysisCtx,
) -> vnet_powerlaw::Result<DegreeReport> {
    let degrees: Vec<u64> =
        dataset.graph.out_degrees().into_iter().filter(|&d| d > 0).collect();
    let fit: DiscreteFit = {
        let _span = ctx.span("analysis.degrees.mle");
        fit_discrete(&degrees, opts)?
    };
    let gof_p = if bootstrap_reps > 0 {
        let _span = ctx.span("analysis.degrees.bootstrap");
        let boot_seed: u64 = rng.random();
        bootstrap_pvalue_discrete(&degrees, &fit, bootstrap_reps, opts, boot_seed, ctx)?
    } else {
        f64::NAN
    };
    let mut vuong = Vec::new();
    for alt in [Alternative::LogNormal, Alternative::Exponential, Alternative::Poisson] {
        let v = vuong_discrete(&degrees, &fit, alt)?;
        vuong.push(VuongRow {
            alternative: alt.to_string(),
            lr: v.lr,
            statistic: v.statistic,
            p_value: v.p_value,
        });
    }
    Ok(DegreeReport {
        proportion_series: vnet_algos::degree::out_degree_proportions(&dataset.graph),
        alpha: fit.alpha,
        xmin: fit.xmin,
        ks: fit.ks,
        n_tail: fit.n_tail,
        gof_p,
        vuong,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vnet_powerlaw::XminStrategy;

    fn quick_opts() -> FitOptions {
        FitOptions { xmin: XminStrategy::Quantiles(40), min_tail: 30 }
    }

    #[test]
    fn figure1_marginals_cover_all_users() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let fig = figure1(&ds, 30);
        assert_eq!(fig.marginals.len(), 4);
        for m in &fig.marginals {
            let total: u64 = m.series.iter().map(|&(_, c)| c).sum::<u64>() + m.zeros;
            assert_eq!(total as usize, ds.graph.node_count(), "attr {}", m.attribute);
            // Heavy-tailed attributes: the series spans orders of magnitude.
            let lo = m.series.first().unwrap().0;
            let hi = m.series.last().unwrap().0;
            assert!(hi / lo > 50.0, "attr {} spans too little: {lo}..{hi}", m.attribute);
        }
    }

    #[test]
    fn degree_analysis_finds_power_law_that_beats_alternatives() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let mut rng = StdRng::seed_from_u64(5);
        let r = degree_analysis(&ds, &quick_opts(), 0, &mut rng, &ctx).unwrap();
        // Exponent in the paper's neighbourhood (generator truth 3.24).
        assert!(r.alpha > 2.2 && r.alpha < 4.5, "alpha={}", r.alpha);
        assert!(r.n_tail >= 30);
        // The proportion series sums to <= 1 (zeros excluded).
        let total: f64 = r.proportion_series.iter().map(|&(_, p)| p).sum();
        assert!(total <= 1.0 + 1e-9);
        // Vuong: power law beats exponential and Poisson outright.
        for row in &r.vuong {
            if row.alternative != "log-normal" {
                assert!(row.lr > 0.0, "{} lr={}", row.alternative, row.lr);
            }
        }
    }
}
