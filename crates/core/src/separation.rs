//! Section IV-D and Figure 3: degrees of separation.

use crate::dataset::Dataset;
use rand::Rng;
use serde::Serialize;
use vnet_algos::distances::{distance_distribution, SourceSpec};
use vnet_ctx::AnalysisCtx;

/// Reference mean path lengths the paper compares against.
pub const WHOLE_TWITTER_SAMPLED: f64 = 4.12; // Kwak et al., sampling
/// Bakhshandeh et al.'s optimal-search estimate for all of Twitter.
pub const WHOLE_TWITTER_SEARCH: f64 = 3.43;

/// Degrees-of-separation results (paper: mean 2.74 omitting isolated
/// nodes; Figure 3's distance histogram).
#[derive(Debug, Clone, Serialize)]
pub struct SeparationReport {
    /// `(distance, ordered pair count)` — Figure 3's series.
    pub histogram: Vec<(u32, u64)>,
    /// Mean pairwise distance over reachable ordered pairs.
    pub mean: f64,
    /// Median distance.
    pub median: u32,
    /// 90th-percentile effective diameter.
    pub effective_diameter: f64,
    /// Largest observed distance (diameter lower bound under sampling).
    pub max_observed: u32,
    /// BFS sources used.
    pub sources: usize,
    /// Reachable ordered pairs counted.
    pub pairs: u64,
}

/// Run the distance analysis from `sources` sampled BFS roots (use
/// `usize::MAX` for the exact all-pairs computation). The BFS sweep fans
/// out over `ctx`'s pool; all accumulation is integer, so the report is
/// identical at any thread count.
pub fn separation_analysis<R: Rng + ?Sized>(
    dataset: &Dataset,
    sources: usize,
    rng: &mut R,
    ctx: &AnalysisCtx,
) -> SeparationReport {
    let spec = if sources == usize::MAX {
        SourceSpec::All
    } else {
        SourceSpec::Sampled(sources)
    };
    let d = distance_distribution(&dataset.graph, spec, rng, ctx);
    SeparationReport {
        histogram: d.series(),
        mean: d.mean,
        median: d.median,
        effective_diameter: d.effective_diameter,
        max_observed: d.max_observed,
        sources: d.sources,
        pairs: d.pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separation_is_short_like_the_paper() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let mut rng = StdRng::seed_from_u64(3);
        let r = separation_analysis(&ds, 200, &mut rng, &ctx);
        // Paper: 2.74 mean, below both whole-Twitter estimates.
        assert!(r.mean > 1.5 && r.mean < 3.5, "mean={}", r.mean);
        assert!(r.mean < WHOLE_TWITTER_SEARCH);
        assert!(r.mean < WHOLE_TWITTER_SAMPLED);
        // Mode of the distribution at 2 or 3 (Figure 3's peak).
        let (mode, _) = r.histogram.iter().max_by_key(|&&(_, c)| c).unwrap();
        assert!((2..=3).contains(mode), "mode={mode}");
        assert!(r.effective_diameter <= r.max_observed as f64);
        assert_eq!(r.sources, 200);
    }
}
