//! Section IV-B (continuous half): the Laplacian eigenvalue power law.

use crate::dataset::Dataset;
use rand::Rng;
use serde::Serialize;
use vnet_ctx::AnalysisCtx;
use vnet_powerlaw::vuong::{vuong_continuous, Alternative};
use vnet_powerlaw::{bootstrap_pvalue_continuous, fit_continuous, FitOptions};
use vnet_spectral::{lanczos_topk, SymLaplacian};

/// Eigenvalue analysis results (paper: α = 3.18, xmin = 9377.26, p = 0.3).
#[derive(Debug, Clone, Serialize)]
pub struct EigenReport {
    /// Top eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Fitted exponent.
    pub alpha: f64,
    /// Fitted cutoff.
    pub xmin: f64,
    /// KS distance.
    pub ks: f64,
    /// Tail observations.
    pub n_tail: usize,
    /// Bootstrap goodness-of-fit p (NaN when reps = 0).
    pub gof_p: f64,
    /// Vuong LR vs log-normal and exponential.
    pub vuong: Vec<crate::degrees::VuongRow>,
}

/// Compute the top-`k` Laplacian eigenvalues (symmetric Laplacian of the
/// undirected projection, as in the paper's spectral references) and fit a
/// continuous power law.
///
/// The paper computes the top 10,000 eigenvalues at 231k nodes and
/// "discard\[s\] most of the smaller eigenvalues" for numerical reasons; at
/// reproduction scale `k` defaults to ~400 with the same top-of-spectrum
/// logic. The Lanczos matvec and the bootstrap replicates fan out over
/// `ctx`'s pool; like every `vnet-par` stage, both are bit-identical at
/// any thread count (the bootstrap draws one seed from `rng` and splits a
/// stream per replicate). Solver counters (`algo.lanczos.*`) and sub-spans
/// are recorded through `ctx`.
pub fn eigen_analysis<R: Rng + ?Sized>(
    dataset: &Dataset,
    k: usize,
    lanczos_steps: usize,
    opts: &FitOptions,
    bootstrap_reps: usize,
    rng: &mut R,
    ctx: &AnalysisCtx,
) -> vnet_powerlaw::Result<EigenReport> {
    let lap = SymLaplacian::from_digraph(&dataset.graph);
    let eigenvalues = {
        let _span = ctx.span("analysis.eigen.lanczos");
        lanczos_topk(&lap, k, lanczos_steps, rng, ctx)
    };
    let positive: Vec<f64> = eigenvalues.iter().copied().filter(|&x| x > 1e-9).collect();
    let fit = {
        let _span = ctx.span("analysis.eigen.fit");
        fit_continuous(&positive, opts)?
    };
    let gof_p = if bootstrap_reps > 0 {
        let _span = ctx.span("analysis.eigen.bootstrap");
        let boot_seed: u64 = rng.random();
        bootstrap_pvalue_continuous(&positive, &fit, bootstrap_reps, opts, boot_seed, ctx)?
    } else {
        f64::NAN
    };
    let mut vuong = Vec::new();
    for alt in [Alternative::LogNormal, Alternative::Exponential] {
        let v = vuong_continuous(&positive, &fit, alt)?;
        vuong.push(crate::degrees::VuongRow {
            alternative: alt.to_string(),
            lr: v.lr,
            statistic: v.statistic,
            p_value: v.p_value,
        });
    }
    Ok(EigenReport {
        eigenvalues,
        alpha: fit.alpha,
        xmin: fit.xmin,
        ks: fit.ks,
        n_tail: fit.n_tail,
        gof_p,
        vuong,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vnet_powerlaw::XminStrategy;

    #[test]
    fn eigen_spectrum_tail_is_power_law_like() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let mut rng = StdRng::seed_from_u64(9);
        let opts = FitOptions { xmin: XminStrategy::Quantiles(30), min_tail: 25 };
        let r = eigen_analysis(&ds, 150, 220, &opts, 0, &mut rng, &ctx).unwrap();
        assert_eq!(r.eigenvalues.len(), 150);
        // Descending, nonnegative.
        for w in r.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
        assert!(*r.eigenvalues.last().unwrap() >= -1e-9);
        // The top of the Laplacian spectrum tracks the degree tail, so the
        // fitted exponent lands near the degree exponent (paper: 3.18 vs
        // 3.24).
        assert!(r.alpha > 2.0 && r.alpha < 5.5, "alpha={}", r.alpha);
        // λ_max >= d_max + 1.
        let dmax = (0..ds.graph.node_count() as u32)
            .map(|v| {
                vnet_algos::clustering::undirected_neighbors(&ds.graph, v).len()
            })
            .max()
            .unwrap() as f64;
        assert!(r.eigenvalues[0] >= dmax + 1.0 - 1e-6, "λmax {} vs dmax {dmax}", r.eigenvalues[0]);
    }
}
