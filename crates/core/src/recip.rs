//! Section IV-C: reciprocity.

use crate::dataset::Dataset;
use serde::Serialize;
use vnet_algos::reciprocity::{mutual_pairs, reciprocity};

/// Reference reciprocity rates the paper compares against.
pub const WHOLE_TWITTER_RECIPROCITY: f64 = 0.221; // Kwak et al. 2010
/// Flickr's reciprocity (Chun et al. 2008), the paper's upper reference.
pub const FLICKR_RECIPROCITY: f64 = 0.68;

/// Reciprocity analysis results (paper: 33.7%).
#[derive(Debug, Clone, Serialize)]
pub struct ReciprocityReport {
    /// Fraction of directed edges that are reciprocated.
    pub reciprocity: f64,
    /// Unordered mutually connected pairs.
    pub mutual_pairs: u64,
    /// One-way edges.
    pub one_way_edges: u64,
    /// Ratio to the whole-Twitter rate (paper: 0.337 / 0.221 ≈ 1.52).
    pub vs_whole_twitter: f64,
    /// Ratio to Flickr (paper: well below 1).
    pub vs_flickr: f64,
}

/// Run the reciprocity analysis.
pub fn reciprocity_analysis(dataset: &Dataset) -> ReciprocityReport {
    let r = reciprocity(&dataset.graph);
    let mutual = mutual_pairs(&dataset.graph);
    ReciprocityReport {
        reciprocity: r,
        mutual_pairs: mutual,
        one_way_edges: dataset.graph.edge_count() as u64 - 2 * mutual,
        vs_whole_twitter: r / WHOLE_TWITTER_RECIPROCITY,
        vs_flickr: r / FLICKR_RECIPROCITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;

    #[test]
    fn reciprocity_sits_between_twitter_and_flickr() {
        let ds = Dataset::build(&SynthesisConfig::small(), &vnet_ctx::AnalysisCtx::quiet());
        let r = reciprocity_analysis(&ds);
        // Paper shape: above the whole-Twitter 22.1%, far below Flickr 68%.
        assert!(r.reciprocity > WHOLE_TWITTER_RECIPROCITY, "r={}", r.reciprocity);
        assert!(r.reciprocity < 0.5, "r={}", r.reciprocity);
        assert!(r.vs_whole_twitter > 1.0);
        assert!(r.vs_flickr < 1.0);
        // Edge bookkeeping is consistent.
        assert_eq!(
            r.one_way_edges + 2 * r.mutual_pairs,
            ds.graph.edge_count() as u64
        );
    }
}
