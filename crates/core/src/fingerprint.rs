//! Section VI's future-work gleam, implemented: the "unique fingerprint"
//! of a verified-user network.
//!
//! "The above-mentioned deviations likely constitute a unique fingerprint
//! for verified users which can be leveraged to discern between a verified
//! and a non-verified user \[network\]." This module packages the deviation
//! vector (power-law tail presence, reciprocity, dissortativity, mean
//! distance, attracting-component density) and a reference classifier that
//! separates verified-model graphs from whole-Twitter-like nulls.

use rand::Rng;
use serde::Serialize;
use vnet_algos::assortativity::{degree_assortativity, DegreeMode};
use vnet_algos::distances::{distance_distribution, SourceSpec};
use vnet_algos::reciprocity::reciprocity;
use vnet_graph::DiGraph;
use vnet_powerlaw::{fit_discrete, FitOptions, XminStrategy};

/// The structural fingerprint the paper's conclusion proposes.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct NetworkFingerprint {
    /// Fitted out-degree power-law exponent (NaN when no fit exists).
    pub out_alpha: f64,
    /// KS distance of that fit (small ⇒ credible power law).
    pub out_ks: f64,
    /// Edge reciprocity.
    pub reciprocity: f64,
    /// Out→in degree assortativity.
    pub assortativity: f64,
    /// Mean pairwise distance (sampled).
    pub mean_distance: f64,
    /// Attracting components per node.
    pub attracting_density: f64,
}

impl NetworkFingerprint {
    /// Measure a graph's fingerprint. `sources` bounds the distance
    /// sample.
    pub fn measure<R: Rng + ?Sized>(g: &DiGraph, sources: usize, rng: &mut R) -> Self {
        let degrees: Vec<u64> = g.out_degrees().into_iter().filter(|&d| d > 0).collect();
        let opts = FitOptions { xmin: XminStrategy::Quantiles(30), min_tail: 25 };
        let (out_alpha, out_ks) = match fit_discrete(&degrees, &opts) {
            Ok(fit) => (fit.alpha, fit.ks),
            Err(_) => (f64::NAN, 1.0),
        };
        let d = distance_distribution(
            g,
            SourceSpec::Sampled(sources),
            rng,
            &vnet_ctx::AnalysisCtx::quiet(),
        );
        let attracting = vnet_algos::components::attracting_components(g).len();
        Self {
            out_alpha,
            out_ks,
            reciprocity: reciprocity(g),
            assortativity: degree_assortativity(g, DegreeMode::OutIn).unwrap_or(0.0),
            mean_distance: d.mean,
            attracting_density: attracting as f64 / g.node_count().max(1) as f64,
        }
    }
}

/// Reference decision rule: does this fingerprint look like a verified
/// sub-graph rather than a whole-Twitter-like graph?
///
/// The thresholds encode the paper's contrasts: elevated reciprocity
/// (33.7% vs 22.1%) — mandatory, because a degree-preserving null
/// replicates every degree-driven statistic but cannot fake deliberate
/// mutual-pair formation — plus at least one of: a credible out-degree
/// power-law tail (whole Twitter: "absence of a power-law") or short
/// internal distances (2.74 vs 3.43–4.12).
pub fn classify_fingerprint(fp: &NetworkFingerprint) -> bool {
    if fp.reciprocity <= 0.28 {
        return false;
    }
    let power_law =
        fp.out_alpha.is_finite() && fp.out_ks < 0.08 && fp.out_alpha > 2.0 && fp.out_alpha < 4.5;
    let short = fp.mean_distance > 0.0 && fp.mean_distance < 3.3;
    power_law || short
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vnet_synth::{preferential_attachment_directed, VerifiedNetConfig, VerifiedNetwork};

    #[test]
    fn verified_model_classified_positive() {
        let mut rng = StdRng::seed_from_u64(21);
        let net = VerifiedNetwork::generate(&VerifiedNetConfig::small(), &mut rng);
        let fp = NetworkFingerprint::measure(&net.graph, 60, &mut rng);
        assert!(classify_fingerprint(&fp), "verified net misclassified: {fp:?}");
        assert!(fp.reciprocity > 0.28);
    }

    #[test]
    fn preferential_attachment_null_classified_negative() {
        let mut rng = StdRng::seed_from_u64(23);
        // Whole-Twitter-like null: PA graph with constant out-degree —
        // no out-degree power law, no reciprocity.
        let g = preferential_attachment_directed(4_000, 25, &mut rng);
        let fp = NetworkFingerprint::measure(&g, 60, &mut rng);
        assert!(!classify_fingerprint(&fp), "null misclassified: {fp:?}");
        assert!(fp.reciprocity < 0.05, "PA reciprocity {}", fp.reciprocity);
    }

    #[test]
    fn fingerprint_fields_finite_on_small_graph() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = vnet_synth::erdos_renyi_directed(300, 3_000, &mut rng);
        let fp = NetworkFingerprint::measure(&g, 30, &mut rng);
        assert!(fp.reciprocity.is_finite());
        assert!(fp.mean_distance.is_finite());
        assert!(fp.attracting_density >= 0.0);
    }
}
