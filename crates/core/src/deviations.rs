//! The deviation table — the paper's framing, in one artefact.
//!
//! Every section of the paper is a comparison: the verified sub-graph
//! versus the generic Twittersphere (Kwak et al.'s numbers). This module
//! measures the crawled verified graph and a whole-Twitter-like null of
//! matched size (directed preferential attachment: heavy-tailed
//! popularity, no out-degree power law, no deliberate reciprocation) and
//! lines the fingerprints up, reproducing the paper's "marks a deviation
//! from findings on the entire Twitter network" narrative quantitatively.

use crate::dataset::Dataset;
use crate::fingerprint::NetworkFingerprint;
use rand::Rng;
use serde::Serialize;
use vnet_synth::preferential_attachment_directed;

/// One row of the deviation table.
#[derive(Debug, Clone, Serialize)]
pub struct DeviationRow {
    /// Statistic name.
    pub statistic: String,
    /// Value on the verified graph.
    pub verified: f64,
    /// Value on the whole-Twitter-like null.
    pub whole_twitter_like: f64,
    /// The paper's qualitative claim for this deviation.
    pub paper_claim: &'static str,
    /// Whether the measured direction matches the claim.
    pub direction_reproduced: bool,
}

/// The deviation table.
#[derive(Debug, Clone, Serialize)]
pub struct DeviationReport {
    /// One row per fingerprint statistic.
    pub rows: Vec<DeviationRow>,
    /// All directions reproduced?
    pub all_reproduced: bool,
}

/// Build the deviation table. The null is a preferential-attachment graph
/// with the same node count and a mean out-degree matched to the verified
/// graph's.
pub fn deviation_analysis<R: Rng + ?Sized>(
    dataset: &Dataset,
    distance_sources: usize,
    rng: &mut R,
) -> DeviationReport {
    let g = &dataset.graph;
    let n = g.node_count() as u32;
    let m = (g.mean_out_degree().round() as usize).max(1);
    let null = preferential_attachment_directed(n, m, rng);

    let fp_v = NetworkFingerprint::measure(g, distance_sources, rng);
    let fp_n = NetworkFingerprint::measure(&null, distance_sources, rng);

    let rows = vec![
        DeviationRow {
            statistic: "out-degree power-law KS (small = credible fit)".into(),
            verified: fp_v.out_ks,
            whole_twitter_like: fp_n.out_ks,
            paper_claim: "power law present for verified users, absent for whole Twitter (Kwak et al.)",
            direction_reproduced: fp_v.out_ks < fp_n.out_ks,
        },
        DeviationRow {
            statistic: "reciprocity".into(),
            verified: fp_v.reciprocity,
            whole_twitter_like: fp_n.reciprocity,
            paper_claim: "33.7% vs 22.1%: verified users reciprocate more",
            direction_reproduced: fp_v.reciprocity > fp_n.reciprocity,
        },
        DeviationRow {
            statistic: "degree assortativity (out->in)".into(),
            verified: fp_v.assortativity,
            whole_twitter_like: fp_n.assortativity,
            paper_claim: "slight dissortativity (vs homophily reported for whole Twitter)",
            direction_reproduced: fp_v.assortativity < 0.02,
        },
        DeviationRow {
            statistic: "mean degrees of separation".into(),
            verified: fp_v.mean_distance,
            whole_twitter_like: fp_n.mean_distance,
            paper_claim: "2.74 vs 3.43-4.12: verified sub-graph is tighter",
            direction_reproduced: fp_v.mean_distance < fp_n.mean_distance
                || fp_v.mean_distance < 3.43,
        },
        DeviationRow {
            statistic: "attracting components per node".into(),
            verified: fp_v.attracting_density,
            whole_twitter_like: fp_n.attracting_density,
            paper_claim: "a large number of attracting components (celebrity sinks)",
            direction_reproduced: fp_v.attracting_density > fp_n.attracting_density,
        },
    ];
    let all_reproduced = rows.iter().all(|r| r.direction_reproduced);
    DeviationReport { rows, all_reproduced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_paper_deviation_reproduces() {
        let ds = Dataset::build(&SynthesisConfig::small(), &vnet_ctx::AnalysisCtx::quiet());
        let mut rng = StdRng::seed_from_u64(31);
        let r = deviation_analysis(&ds, 60, &mut rng);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(
                row.direction_reproduced,
                "deviation not reproduced: {} (verified {} vs null {})",
                row.statistic, row.verified, row.whole_twitter_like
            );
        }
        assert!(r.all_reproduced);
    }
}
