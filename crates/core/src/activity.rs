//! Section V and Figure 6: activity analysis.

use crate::dataset::Dataset;
use serde::Serialize;
use vnet_ctx::AnalysisCtx;
use vnet_timeseries::adf::{adf_test, AdfRegression, LagSelection};
use vnet_timeseries::pelt::pelt_consensus;
use vnet_timeseries::portmanteau::{box_pierce, ljung_box};
use vnet_timeseries::seasonal::deseasonalize_weekly;
use vnet_timeseries::{CalendarHeatmap, Date};

/// One detected change-point with its calendar date and consensus support.
#[derive(Debug, Clone, Serialize)]
pub struct ChangePoint {
    /// Day index into the series.
    pub index: usize,
    /// Calendar date.
    pub date: String,
    /// Fraction of penalty-sweep runs that found it.
    pub support: f64,
}

/// Section V results.
#[derive(Debug, Clone, Serialize)]
pub struct ActivityReport {
    /// Days analyzed (paper: 366).
    pub days: usize,
    /// Mean per-weekday activity, Monday..Sunday (Figure 6's Sunday dip).
    pub weekday_means: [f64; 7],
    /// Ljung-Box maximum p over lag horizons up to the cap (paper:
    /// 3.81×10⁻³⁸ at lag cap 185).
    pub ljung_box_max_p: f64,
    /// Box-Pierce maximum p (paper: 7.57×10⁻³⁸).
    pub box_pierce_max_p: f64,
    /// Lag cap used.
    pub lag_cap: usize,
    /// ADF statistic with constant + trend (paper: −3.86).
    pub adf_statistic: f64,
    /// ADF 5% critical value (paper: −3.42).
    pub adf_crit_5pct: f64,
    /// Whether the unit root is rejected (stationarity, paper: yes).
    pub stationary: bool,
    /// KPSS statistic (trend spec) on the whole series — the confirmatory
    /// companion test this reproduction adds. On a series with genuine
    /// change-points KPSS is *expected* to reject here (its partial-sum
    /// statistic is exactly a level-shift detector); the piecewise field
    /// below is the meaningful confirmation.
    pub kpss_statistic: f64,
    /// KPSS 5% critical value.
    pub kpss_crit_5pct: f64,
    /// KPSS statistic on the longest segment between detected
    /// change-points: the series is "piecewise stationary" when ADF
    /// rejects a unit root AND this within-segment KPSS does not reject.
    pub kpss_segment_statistic: f64,
    /// `true` when ADF and within-segment KPSS agree on (piecewise)
    /// stationarity.
    pub stationarity_confirmed: bool,
    /// PELT consensus change-points (paper: pre-Christmas + early April).
    pub changepoints: Vec<ChangePoint>,
    /// Calendar heatmap cells as `(date, value)` (Figure 6's data).
    pub heatmap: Vec<(String, f64)>,
}

/// Run the full Section V battery.
///
/// `lag_cap` follows the paper's 185-day horizon when the series allows;
/// it is clamped to `days − 2`. The PELT pass runs on the weekly-
/// deseasonalized series (see `vnet_timeseries::seasonal` for why).
/// Portmanteau, unit-root, and change-point sub-spans are recorded
/// through `ctx`.
pub fn activity_analysis(
    dataset: &Dataset,
    lag_cap: usize,
    ctx: &AnalysisCtx,
) -> vnet_timeseries::Result<ActivityReport> {
    let s = &dataset.activity;
    let days = s.len();
    let cap = lag_cap.min(days.saturating_sub(2));

    // Portmanteau: the paper reports the max p over tested horizons.
    let mut lb_max: f64 = 0.0;
    let mut bp_max: f64 = 0.0;
    {
        let _span = ctx.span("analysis.activity.portmanteau");
        for h in 1..=cap {
            lb_max = lb_max.max(ljung_box(s, h)?.p_value);
            bp_max = bp_max.max(box_pierce(s, h)?.p_value);
        }
    }

    // ADF with constant and trend, weekly lag order (the paper checks up
    // to 185 lags; a weekly order captures the same dynamics on this
    // series and keeps the regression well-conditioned).
    let (adf, kpss) = {
        let _span = ctx.span("analysis.activity.unit_root");
        let adf = adf_test(s, AdfRegression::ConstantTrend, LagSelection::Fixed(7))?;
        // KPSS confirmation (null: trend-stationarity).
        let kpss =
            vnet_timeseries::kpss_test(s, vnet_timeseries::KpssRegression::ConstantTrend, None)?;
        (adf, kpss)
    };

    // PELT penalty cool-down consensus on the deseasonalized series.
    let _pelt_span = ctx.span("analysis.activity.pelt");
    let deseason = deseasonalize_weekly(s)?;
    let n = days as f64;
    let cons = pelt_consensus(&deseason, 40.0 * n.ln(), 2.5 * n.ln(), 12, 6, 0.5)?;
    drop(_pelt_span);
    let changepoints: Vec<ChangePoint> = cons
        .into_iter()
        .map(|(idx, support)| ChangePoint {
            index: idx,
            date: dataset.activity_start.plus_days(idx as i64).to_string(),
            support,
        })
        .collect();

    // Piecewise KPSS confirmation: within the longest break-free segment
    // the series must be trend-stationary for the "stationary between
    // change-points" verdict.
    let mut bounds: Vec<usize> = vec![0];
    bounds.extend(changepoints.iter().map(|c| c.index));
    bounds.push(days);
    let (seg_a, seg_b) = bounds
        .windows(2)
        .map(|w| (w[0], w[1]))
        .max_by_key(|&(a, b)| b - a)
        .expect("at least one segment");
    let kpss_segment = vnet_timeseries::kpss_test(
        &s[seg_a..seg_b],
        vnet_timeseries::KpssRegression::ConstantTrend,
        None,
    )?;

    let heatmap = CalendarHeatmap::new(dataset.activity_start, s);
    Ok(ActivityReport {
        days,
        weekday_means: heatmap.weekday_means(),
        ljung_box_max_p: lb_max,
        box_pierce_max_p: bp_max,
        lag_cap: cap,
        adf_statistic: adf.statistic,
        adf_crit_5pct: adf.crit_5pct,
        stationary: adf.is_stationary_5pct(),
        kpss_statistic: kpss.statistic,
        kpss_crit_5pct: kpss.crit_5pct,
        kpss_segment_statistic: kpss_segment.statistic,
        stationarity_confirmed: adf.is_stationary_5pct() && kpss_segment.is_stationary_5pct(),
        changepoints,
        heatmap: heatmap.cells.iter().map(|c| (c.date.to_string(), c.value)).collect(),
    })
}

/// The paper's two expected change-point anchors.
pub fn paper_changepoint_anchors(start: Date) -> (i64, i64) {
    let christmas = Date::new(2017, 12, 23).to_epoch_days() - start.to_epoch_days();
    let april = Date::new(2018, 4, 3).to_epoch_days() - start.to_epoch_days();
    (christmas, april)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;

    #[test]
    fn activity_report_matches_paper_shape() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let r = activity_analysis(&ds, 60, &ctx).unwrap();
        assert_eq!(r.days, 366);
        // Portmanteau: decisive rejection at every horizon.
        assert!(r.ljung_box_max_p < 1e-6, "LB max p = {}", r.ljung_box_max_p);
        assert!(r.box_pierce_max_p < 1e-6, "BP max p = {}", r.box_pierce_max_p);
        // Stationary by ADF, like the paper's −3.86 < −3.42.
        assert!(r.stationary, "adf={} crit={}", r.adf_statistic, r.adf_crit_5pct);
        assert!((r.adf_crit_5pct - (-3.42)).abs() < 0.03);
        // Two-ish change-points at Christmas and early April.
        let (christmas, april) = paper_changepoint_anchors(ds.activity_start);
        assert!(
            r.changepoints.iter().any(|c| (c.index as i64 - christmas).abs() <= 6),
            "no Christmas changepoint: {:?}",
            r.changepoints
        );
        assert!(
            r.changepoints.iter().any(|c| (c.index as i64 - april).abs() <= 6),
            "no April changepoint: {:?}",
            r.changepoints
        );
        assert!(r.changepoints.len() <= 4);
        // Sunday (index 6) is the weekly minimum.
        let sunday = r.weekday_means[6];
        for wd in 0..5 {
            assert!(sunday < r.weekday_means[wd], "Sunday not the dip");
        }
        assert_eq!(r.heatmap.len(), 366);
        assert!(r.heatmap[0].0.starts_with("2017-06-01"));
    }
}
