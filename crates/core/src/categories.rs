//! User categorization from bios ("User Categorization" is one of the
//! paper's index terms).
//!
//! Section IV-E reads professional themes out of the bios and concludes
//! that journalism dominates the verified elite. This module turns that
//! reading into a measurement: classify every user by bio keywords
//! (`vnet_textmine::categorize`), then profile each category's size and
//! reach — quantifying "being a pre-eminent journalist ... seems to be one
//! of the surest ways to get verified".

use crate::dataset::Dataset;
use serde::Serialize;
use vnet_textmine::categorize_bio;

/// Size and reach profile of one user category.
#[derive(Debug, Clone, Serialize)]
pub struct CategoryProfile {
    /// Category label.
    pub category: String,
    /// Members.
    pub count: usize,
    /// Share of all users.
    pub share: f64,
    /// Mean global follower count.
    pub mean_followers: f64,
    /// Mean in-degree inside the verified sub-graph.
    pub mean_internal_in_degree: f64,
    /// Mean lifetime statuses.
    pub mean_statuses: f64,
}

/// Category analysis results.
#[derive(Debug, Clone, Serialize)]
pub struct CategoryReport {
    /// Profiles sorted by membership, descending.
    pub profiles: Vec<CategoryProfile>,
    /// Combined share of news-adjacent categories (journalist +
    /// media-outlet) — the paper's dominant theme.
    pub news_share: f64,
}

/// Classify every user's bio and aggregate per-category statistics.
pub fn category_analysis(dataset: &Dataset) -> CategoryReport {
    use std::collections::HashMap;
    struct Acc {
        count: usize,
        followers: f64,
        in_degree: f64,
        statuses: f64,
    }
    let mut acc: HashMap<&'static str, Acc> = HashMap::new();
    for (v, p) in dataset.profiles.iter().enumerate() {
        let label = categorize_bio(&p.bio).label();
        let e = acc.entry(label).or_insert(Acc { count: 0, followers: 0.0, in_degree: 0.0, statuses: 0.0 });
        e.count += 1;
        e.followers += p.followers_count as f64;
        e.in_degree += dataset.graph.in_degree(v as u32) as f64;
        e.statuses += p.statuses_count as f64;
    }
    let total: usize = dataset.profiles.len();
    let mut profiles: Vec<CategoryProfile> = acc
        .into_iter()
        .map(|(label, a)| CategoryProfile {
            category: label.to_string(),
            count: a.count,
            share: a.count as f64 / total.max(1) as f64,
            mean_followers: a.followers / a.count.max(1) as f64,
            mean_internal_in_degree: a.in_degree / a.count.max(1) as f64,
            mean_statuses: a.statuses / a.count.max(1) as f64,
        })
        .collect();
    profiles.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.category.cmp(&b.category)));
    let news_share = profiles
        .iter()
        .filter(|p| p.category == "journalist" || p.category == "media-outlet")
        .map(|p| p.share)
        .sum();
    CategoryReport { profiles, news_share }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use crate::Dataset;

    #[test]
    fn journalism_dominates_as_in_the_paper() {
        let ds = Dataset::build(&SynthesisConfig::small(), &vnet_ctx::AnalysisCtx::quiet());
        let r = category_analysis(&ds);
        let total: usize = r.profiles.iter().map(|p| p.count).sum();
        assert_eq!(total, ds.profiles.len());
        // News-adjacent categories carry a large share (generator prior:
        // journalists 24% + outlets 13%, classifier is noisy but close).
        assert!(r.news_share > 0.15, "news share {}", r.news_share);
        // Journalist is among the top-3 categories by membership.
        let top3: Vec<&str> =
            r.profiles.iter().take(3).map(|p| p.category.as_str()).collect();
        assert!(top3.contains(&"journalist"), "top3: {top3:?}");
        // Shares sum to one.
        let share_sum: f64 = r.profiles.iter().map(|p| p.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }
}
