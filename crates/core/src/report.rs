//! The full-analysis driver: every paper section in one call.

use crate::activity::{activity_analysis_observed, ActivityReport};
use crate::basic::{basic_analysis_observed, BasicReport};
use crate::bios::{bio_analysis_observed, BioReport};
use crate::categories::{category_analysis, CategoryReport};
use crate::centrality::{centrality_analysis_observed, CentralityReport};
use crate::dataset::{Dataset, DatasetSummary};
use crate::degrees::{degree_analysis_observed, figure1, DegreeReport, Figure1};
use crate::eigen::{eigen_analysis_observed, EigenReport};
use crate::elite_core::{elite_core_analysis, EliteCoreReport};
use crate::recip::{reciprocity_analysis, ReciprocityReport};
use crate::separation::{separation_analysis_observed, SeparationReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use vnet_obs::Obs;
use vnet_par::ParPool;
use vnet_powerlaw::{FitOptions, XminStrategy};

/// Cost/precision knobs for the full battery.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Node samples for the clustering estimate.
    pub clustering_samples: usize,
    /// BFS sources for the distance distribution (`usize::MAX` = exact).
    pub distance_sources: usize,
    /// Brandes pivots for betweenness.
    pub betweenness_pivots: usize,
    /// Worker threads for the `vnet-par` fork-join stages (betweenness,
    /// PageRank, BFS sweep, Lanczos matvec, bootstrap). Never affects any
    /// result bit — only wall-clock.
    pub threads: usize,
    /// Top-k Laplacian eigenvalues.
    pub eigen_k: usize,
    /// Lanczos iterations.
    pub lanczos_steps: usize,
    /// Power-law xmin scan strategy.
    pub fit: FitOptions,
    /// Bootstrap replicates for goodness-of-fit p (0 = skip; the paper
    /// used the plfit/poweRlaw defaults).
    pub bootstrap_reps: usize,
    /// Portmanteau lag cap (paper: 185).
    pub lag_cap: usize,
    /// Rows per n-gram table (paper: 15).
    pub ngram_rows: usize,
    /// Log bins for Figure 1.
    pub fig1_bins: usize,
    /// Master seed for all randomized estimators.
    pub seed: u64,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            clustering_samples: 3_000,
            distance_sources: 200,
            betweenness_pivots: 150,
            threads: 4,
            eigen_k: 300,
            lanczos_steps: 450,
            fit: FitOptions { xmin: XminStrategy::Quantiles(60), min_tail: 30 },
            bootstrap_reps: 0,
            lag_cap: 185,
            ngram_rows: 15,
            fig1_bins: 40,
            seed: 0x5EED,
        }
    }
}

impl AnalysisOptions {
    /// Cheap settings for tests and quick demos.
    pub fn quick() -> Self {
        Self {
            clustering_samples: 800,
            distance_sources: 60,
            betweenness_pivots: 50,
            threads: 2,
            eigen_k: 100,
            lanczos_steps: 160,
            fit: FitOptions { xmin: XminStrategy::Quantiles(25), min_tail: 25 },
            bootstrap_reps: 0,
            lag_cap: 40,
            ..Self::default()
        }
    }
}

/// Everything the paper measures, in one serializable bundle.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisReport {
    /// §III headline numbers.
    pub dataset: DatasetSummary,
    /// §IV-A.
    pub basic: BasicReport,
    /// Figure 1.
    pub figure1: Figure1,
    /// §IV-B discrete + Figure 2.
    pub degrees: DegreeReport,
    /// §IV-B continuous (eigenvalues).
    pub eigen: EigenReport,
    /// §IV-C.
    pub reciprocity: ReciprocityReport,
    /// §IV-D + Figure 3.
    pub separation: SeparationReport,
    /// §IV-E + Figure 4 + Tables I & II.
    pub bios: BioReport,
    /// §IV-F + Figure 5.
    pub centrality: CentralityReport,
    /// §V + Figure 6.
    pub activity: ActivityReport,
    /// §IV-C's deferred conjecture, validated (extension).
    pub elite_core: EliteCoreReport,
    /// Bio-based user categorization (extension; paper index term).
    pub categories: CategoryReport,
}

/// Run every analysis of the paper on `dataset`.
///
/// # Panics
/// Panics if the dataset is too small for the configured estimators
/// (power-law fits need tails; the battery is meant for graphs of at
/// least a few thousand nodes).
pub fn run_full_analysis(dataset: &Dataset, opts: &AnalysisOptions) -> AnalysisReport {
    run_full_analysis_observed(dataset, opts, &Obs::noop())
}

/// [`run_full_analysis`] with one span per paper section (plus the
/// sub-spans and work counters of the observed stage variants) recorded
/// into `obs`. The RNG stream is identical to the unobserved driver, so
/// both produce the same report for the same seed — and the fork-join
/// stages run through a `vnet-par` pool of `opts.threads` workers whose
/// decomposition never depends on the thread count, so the report is also
/// identical at any `opts.threads`.
pub fn run_full_analysis_observed(
    dataset: &Dataset,
    opts: &AnalysisOptions,
    obs: &Obs,
) -> AnalysisReport {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let pool = ParPool::new(opts.threads);
    let basic = {
        let _span = obs.span("analysis.basic");
        basic_analysis_observed(dataset, opts.clustering_samples, &mut rng, obs)
    };
    let fig1 = {
        let _span = obs.span("analysis.figure1");
        figure1(dataset, opts.fig1_bins)
    };
    let degrees = {
        let _span = obs.span("analysis.degrees");
        degree_analysis_observed(dataset, &opts.fit, opts.bootstrap_reps, &pool, &mut rng, obs)
            .expect("degree power-law fit failed — dataset too small?")
    };
    let eigen = {
        let _span = obs.span("analysis.eigen");
        eigen_analysis_observed(
            dataset,
            opts.eigen_k,
            opts.lanczos_steps,
            &opts.fit,
            opts.bootstrap_reps,
            &pool,
            &mut rng,
            obs,
        )
        .expect("eigenvalue power-law fit failed — dataset too small?")
    };
    let reciprocity = {
        let _span = obs.span("analysis.reciprocity");
        reciprocity_analysis(dataset)
    };
    let separation = {
        let _span = obs.span("analysis.separation");
        separation_analysis_observed(dataset, opts.distance_sources, &pool, &mut rng, obs)
    };
    let bios = {
        let _span = obs.span("analysis.bios");
        bio_analysis_observed(dataset, opts.ngram_rows, obs)
    };
    let centrality = {
        let _span = obs.span("analysis.centrality");
        centrality_analysis_observed(
            dataset,
            opts.betweenness_pivots,
            &pool,
            &mut rng,
            obs,
        )
    };
    let activity = {
        let _span = obs.span("analysis.activity");
        activity_analysis_observed(dataset, opts.lag_cap, obs)
            .expect("activity analysis failed — series too short?")
    };
    let elite_core = {
        let _span = obs.span("analysis.elite_core");
        elite_core_analysis(dataset)
    };
    let categories = {
        let _span = obs.span("analysis.categories");
        category_analysis(dataset)
    };
    AnalysisReport {
        dataset: dataset.summary(),
        basic,
        figure1: fig1,
        degrees,
        eigen,
        reciprocity,
        separation,
        bios,
        centrality,
        activity,
        elite_core,
        categories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;

    #[test]
    fn full_battery_runs_and_serializes() {
        let ds = Dataset::synthesize(&SynthesisConfig::small());
        let report = run_full_analysis(&ds, &AnalysisOptions::quick());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.len() > 1_000);
        // Spot checks across sections.
        assert_eq!(report.dataset.users, ds.graph.node_count());
        assert!(report.degrees.alpha > 2.0);
        assert!(report.reciprocity.reciprocity > 0.25);
        assert!(report.activity.stationary);
        assert!(report.activity.stationarity_confirmed, "KPSS disagreed with ADF");
        assert_eq!(report.bios.top_bigrams[0].ngram, "Official Twitter");
        // Elite-core direction is asserted at reproduction scale in
        // elite_core's own test; here just check the bands are sane.
        assert!(report.elite_core.bands.len() >= 3);
        assert!(report.elite_core.degeneracy > 0);
        assert!(report.categories.news_share > 0.1);
    }
}
