//! The full-analysis driver: every paper section in one call.
//!
//! [`run_analysis`] takes the dataset, an [`AnalysisOptions`], and an
//! `AnalysisCtx` (thread pool + observability handle) and composes the
//! eleven [`crate::section::Section`]s into one [`AnalysisReport`]. Each
//! section seeds a fresh RNG from `opts.seed`, so any section computed
//! standalone via [`crate::section::run_analysis_section`] — as the
//! `vnet-serve` service and its cache do — is bit-identical to the same
//! field of the full report.

use crate::activity::ActivityReport;
use crate::basic::BasicReport;
use crate::bios::BioReport;
use crate::categories::CategoryReport;
use crate::centrality::CentralityReport;
use crate::dataset::{Dataset, DatasetSummary};
use crate::degrees::{DegreeReport, Figure1};
use crate::eigen::EigenReport;
use crate::elite_core::EliteCoreReport;
use crate::recip::ReciprocityReport;
use crate::section;
use crate::separation::SeparationReport;
use serde::Serialize;
use vnet_ctx::AnalysisCtx;
use vnet_obs::fingerprint_str;
use vnet_powerlaw::{FitOptions, XminStrategy};

/// Cost/precision knobs for the full battery.
///
/// Plain struct with public fields (struct-update syntax keeps working);
/// [`AnalysisOptions::builder`] offers a fluent alternative. The
/// [`fingerprint`](AnalysisOptions::fingerprint) covers every
/// result-affecting field — and deliberately **excludes** `threads`,
/// which never changes a result bit, so the service cache can serve a
/// `--threads 4` request from a `--threads 1` computation.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Node samples for the clustering estimate.
    pub clustering_samples: usize,
    /// BFS sources for the distance distribution (`usize::MAX` = exact).
    pub distance_sources: usize,
    /// Brandes pivots for betweenness.
    pub betweenness_pivots: usize,
    /// Worker threads for the `vnet-par` fork-join stages (betweenness,
    /// PageRank, BFS sweep, Lanczos matvec, bootstrap). Never affects any
    /// result bit — only wall-clock.
    pub threads: usize,
    /// Top-k Laplacian eigenvalues.
    pub eigen_k: usize,
    /// Lanczos iterations.
    pub lanczos_steps: usize,
    /// Power-law xmin scan strategy.
    pub fit: FitOptions,
    /// Bootstrap replicates for goodness-of-fit p (0 = skip; the paper
    /// used the plfit/poweRlaw defaults).
    pub bootstrap_reps: usize,
    /// Portmanteau lag cap (paper: 185).
    pub lag_cap: usize,
    /// Rows per n-gram table (paper: 15).
    pub ngram_rows: usize,
    /// Log bins for Figure 1.
    pub fig1_bins: usize,
    /// Master seed for all randomized estimators.
    pub seed: u64,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            clustering_samples: 3_000,
            distance_sources: 200,
            betweenness_pivots: 150,
            threads: 4,
            eigen_k: 300,
            lanczos_steps: 450,
            fit: FitOptions { xmin: XminStrategy::Quantiles(60), min_tail: 30 },
            bootstrap_reps: 0,
            lag_cap: 185,
            ngram_rows: 15,
            fig1_bins: 40,
            seed: 0x5EED,
        }
    }
}

impl AnalysisOptions {
    /// Cheap settings for tests and quick demos.
    pub fn quick() -> Self {
        Self {
            clustering_samples: 800,
            distance_sources: 60,
            betweenness_pivots: 50,
            threads: 2,
            eigen_k: 100,
            lanczos_steps: 160,
            fit: FitOptions { xmin: XminStrategy::Quantiles(25), min_tail: 25 },
            bootstrap_reps: 0,
            lag_cap: 40,
            ..Self::default()
        }
    }

    /// A fluent builder starting from [`AnalysisOptions::default`].
    pub fn builder() -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder { opts: Self::default() }
    }

    /// A builder starting from this value (e.g. `quick().to_builder()`).
    pub fn to_builder(self) -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder { opts: self }
    }

    /// FNV-1a fingerprint of every result-affecting field.
    ///
    /// `threads` is excluded on purpose: the fork-join layer guarantees
    /// bit-identical results at any thread count, and the `vnet-serve`
    /// result cache keys on this fingerprint — a repeat query at a
    /// different thread count must hit.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_str(&format!(
            "vnet-analysis-options-v1:{}:{}:{}:{}:{}:{:?}:{}:{}:{}:{}:{}",
            self.clustering_samples,
            self.distance_sources,
            self.betweenness_pivots,
            self.eigen_k,
            self.lanczos_steps,
            self.fit,
            self.bootstrap_reps,
            self.lag_cap,
            self.ngram_rows,
            self.fig1_bins,
            self.seed,
        ))
    }
}

/// Fluent builder for [`AnalysisOptions`]; see
/// [`AnalysisOptions::builder`].
#[derive(Debug, Clone)]
pub struct AnalysisOptionsBuilder {
    opts: AnalysisOptions,
}

impl AnalysisOptionsBuilder {
    /// Node samples for the clustering estimate.
    pub fn clustering_samples(mut self, n: usize) -> Self {
        self.opts.clustering_samples = n;
        self
    }

    /// BFS sources for the distance distribution.
    pub fn distance_sources(mut self, n: usize) -> Self {
        self.opts.distance_sources = n;
        self
    }

    /// Brandes pivots for betweenness.
    pub fn betweenness_pivots(mut self, n: usize) -> Self {
        self.opts.betweenness_pivots = n;
        self
    }

    /// Worker threads for the fork-join stages.
    pub fn threads(mut self, n: usize) -> Self {
        self.opts.threads = n;
        self
    }

    /// Top-k Laplacian eigenvalues.
    pub fn eigen_k(mut self, k: usize) -> Self {
        self.opts.eigen_k = k;
        self
    }

    /// Lanczos iterations.
    pub fn lanczos_steps(mut self, n: usize) -> Self {
        self.opts.lanczos_steps = n;
        self
    }

    /// Power-law xmin scan strategy.
    pub fn fit(mut self, fit: FitOptions) -> Self {
        self.opts.fit = fit;
        self
    }

    /// Bootstrap replicates for goodness-of-fit p.
    pub fn bootstrap_reps(mut self, n: usize) -> Self {
        self.opts.bootstrap_reps = n;
        self
    }

    /// Portmanteau lag cap.
    pub fn lag_cap(mut self, n: usize) -> Self {
        self.opts.lag_cap = n;
        self
    }

    /// Rows per n-gram table.
    pub fn ngram_rows(mut self, n: usize) -> Self {
        self.opts.ngram_rows = n;
        self
    }

    /// Log bins for Figure 1.
    pub fn fig1_bins(mut self, n: usize) -> Self {
        self.opts.fig1_bins = n;
        self
    }

    /// Master seed for all randomized estimators.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Finish the build.
    pub fn build(self) -> AnalysisOptions {
        self.opts
    }
}

/// Everything the paper measures, in one serializable bundle.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisReport {
    /// §III headline numbers.
    pub dataset: DatasetSummary,
    /// §IV-A.
    pub basic: BasicReport,
    /// Figure 1.
    pub figure1: Figure1,
    /// §IV-B discrete + Figure 2.
    pub degrees: DegreeReport,
    /// §IV-B continuous (eigenvalues).
    pub eigen: EigenReport,
    /// §IV-C.
    pub reciprocity: ReciprocityReport,
    /// §IV-D + Figure 3.
    pub separation: SeparationReport,
    /// §IV-E + Figure 4 + Tables I & II.
    pub bios: BioReport,
    /// §IV-F + Figure 5.
    pub centrality: CentralityReport,
    /// §V + Figure 6.
    pub activity: ActivityReport,
    /// §IV-C's deferred conjecture, validated (extension).
    pub elite_core: EliteCoreReport,
    /// Bio-based user categorization (extension; paper index term).
    pub categories: CategoryReport,
}

/// Run every analysis of the paper on `dataset`.
///
/// The fork-join stages run through `ctx.pool()` and counters/spans land
/// in `ctx.obs()` (pass [`AnalysisCtx::quiet`] for plain serial results).
/// Every section seeds its own RNG from `opts.seed`, so the report is a
/// pure function of `(dataset, opts)` — the context can only change
/// wall-clock time and telemetry, never a result bit.
///
/// # Panics
/// Panics if the dataset is too small for the configured estimators
/// (power-law fits need tails; the battery is meant for graphs of at
/// least a few thousand nodes). Use
/// [`crate::section::run_analysis_section`] for a non-panicking,
/// per-section API.
pub fn run_analysis(dataset: &Dataset, opts: &AnalysisOptions, ctx: &AnalysisCtx) -> AnalysisReport {
    let basic = section::sec_basic(dataset, opts, ctx);
    let fig1 = section::sec_figure1(dataset, opts, ctx);
    let degrees = section::sec_degrees(dataset, opts, ctx)
        .expect("degree power-law fit failed — dataset too small?");
    let eigen = section::sec_eigen(dataset, opts, ctx)
        .expect("eigenvalue power-law fit failed — dataset too small?");
    let reciprocity = section::sec_reciprocity(dataset, opts, ctx);
    let separation = section::sec_separation(dataset, opts, ctx);
    let bios = section::sec_bios(dataset, opts, ctx);
    let centrality = section::sec_centrality(dataset, opts, ctx);
    let activity = section::sec_activity(dataset, opts, ctx)
        .expect("activity analysis failed — series too short?");
    let elite_core = section::sec_elite_core(dataset, opts, ctx);
    let categories = section::sec_categories(dataset, opts, ctx);
    AnalysisReport {
        dataset: dataset.summary(),
        basic,
        figure1: fig1,
        degrees,
        eigen,
        reciprocity,
        separation,
        bios,
        centrality,
        activity,
        elite_core,
        categories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;

    #[test]
    fn full_battery_runs_and_serializes() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let report = run_analysis(&ds, &AnalysisOptions::quick(), &AnalysisCtx::quiet());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.len() > 1_000);
        // Spot checks across sections.
        assert_eq!(report.dataset.users, ds.graph.node_count());
        assert!(report.degrees.alpha > 2.0);
        assert!(report.reciprocity.reciprocity > 0.25);
        assert!(report.activity.stationary);
        assert!(report.activity.stationarity_confirmed, "KPSS disagreed with ADF");
        assert_eq!(report.bios.top_bigrams[0].ngram, "Official Twitter");
        // Elite-core direction is asserted at reproduction scale in
        // elite_core's own test; here just check the bands are sane.
        assert!(report.elite_core.bands.len() >= 3);
        assert!(report.elite_core.degeneracy > 0);
        assert!(report.categories.news_share > 0.1);
    }

    #[test]
    fn builder_roundtrips_and_quick_is_preserved() {
        let built = AnalysisOptions::builder().threads(4).bootstrap_reps(200).build();
        assert_eq!(built.threads, 4);
        assert_eq!(built.bootstrap_reps, 200);
        // Untouched knobs keep their defaults.
        let d = AnalysisOptions::default();
        assert_eq!(built.seed, d.seed);
        assert_eq!(built.eigen_k, d.eigen_k);
        // quick() is still reachable both directly and via to_builder.
        let q = AnalysisOptions::quick().to_builder().seed(99).build();
        assert_eq!(q.clustering_samples, AnalysisOptions::quick().clustering_samples);
        assert_eq!(q.seed, 99);
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_results_knobs() {
        let base = AnalysisOptions::quick();
        let t1 = base.to_builder().threads(1).build();
        let t4 = base.to_builder().threads(4).build();
        assert_eq!(t1.fingerprint(), t4.fingerprint(), "threads must not affect the key");
        let reseeded = base.to_builder().seed(base.seed + 1).build();
        assert_ne!(base.fingerprint(), reseeded.fingerprint());
        let more_reps = base.to_builder().bootstrap_reps(7).build();
        assert_ne!(base.fingerprint(), more_reps.fingerprint());
    }
}
