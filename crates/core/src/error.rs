//! The workspace-wide error type.
//!
//! Before 0.2.0 every layer surfaced failures its own way: `graph::io`
//! returned stringly parse errors, `core::io` had a private `IoError`,
//! the fault-injected crawl leaked raw [`vnet_twittersim::ApiError`]s,
//! and the analysis drivers panicked. [`VnetError`] unifies all of them
//! behind one `std::error::Error` enum that the analysis service
//! (`vnet-serve`) can also ship over the wire as a structured
//! `{code, message}` reply — see [`VnetError::code`].

use crate::section::Section;

/// Every way the verified-net pipeline can fail.
#[derive(Debug)]
pub enum VnetError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Graph construction or (de)serialization failure.
    Graph(vnet_graph::GraphError),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The simulated Twitter API refused a request.
    Api(vnet_twittersim::ApiError),
    /// A fault-injected crawl exhausted its retry budget and aborted.
    CrawlAborted {
        /// Crawl passes completed before the abort.
        passes: usize,
        /// The terminal API error.
        error: vnet_twittersim::ApiError,
    },
    /// A dataset bundle's components disagree (e.g. profile count ≠ node
    /// count).
    Inconsistent(String),
    /// Input data fed to an estimator was invalid (non-finite samples
    /// smuggled through dataset I/O, for example). Distinct from
    /// [`VnetError::Analysis`] so service clients can tell "your data is
    /// bad" from "the computation failed".
    InvalidInput(String),
    /// An analysis section failed (estimator preconditions, fit failures).
    Analysis {
        /// The section that failed.
        section: Section,
        /// What went wrong.
        message: String,
    },
    /// A malformed service request.
    BadRequest(String),
    /// The service has no snapshot registered under this name.
    UnknownSnapshot(String),
    /// No analysis section has this id.
    UnknownSection(String),
    /// A client exceeded its admission-control window quota. Mirrors
    /// [`vnet_twittersim::ApiError::RateLimited`] on the serving side:
    /// the hint is deterministic given the admission clock — the
    /// milliseconds until the client's window resets.
    RateLimited {
        /// Milliseconds until the rejected client's window resets.
        retry_after_ms: u64,
    },
    /// The service's bounded in-flight queue is full.
    QueueFull {
        /// Requests currently in flight.
        in_flight: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A service request exceeded its deadline.
    Timeout {
        /// The deadline that elapsed.
        millis: u64,
    },
    /// The service is draining and refuses new work.
    ShuttingDown,
}

impl VnetError {
    /// Stable machine-readable code, used as the `error.code` field of the
    /// `vnet-serve` wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            VnetError::Io(_) => "io",
            VnetError::Graph(_) => "graph",
            VnetError::Json(_) => "json",
            VnetError::Api(_) => "api",
            VnetError::CrawlAborted { .. } => "crawl_aborted",
            VnetError::Inconsistent(_) => "inconsistent",
            VnetError::InvalidInput(_) => "invalid_input",
            VnetError::Analysis { .. } => "analysis",
            VnetError::BadRequest(_) => "bad_request",
            VnetError::UnknownSnapshot(_) => "unknown_snapshot",
            VnetError::UnknownSection(_) => "unknown_section",
            VnetError::RateLimited { .. } => "rate_limited",
            VnetError::QueueFull { .. } => "queue_full",
            VnetError::Timeout { .. } => "timeout",
            VnetError::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for VnetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VnetError::Io(e) => write!(f, "io: {e}"),
            VnetError::Graph(e) => write!(f, "graph: {e}"),
            VnetError::Json(e) => write!(f, "json: {e}"),
            VnetError::Api(e) => write!(f, "api: {e}"),
            VnetError::CrawlAborted { passes, error } => {
                write!(f, "crawl aborted after {passes} pass(es): {error}")
            }
            VnetError::Inconsistent(m) => write!(f, "inconsistent bundle: {m}"),
            VnetError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            VnetError::Analysis { section, message } => {
                write!(f, "analysis section '{}' failed: {message}", section.id())
            }
            VnetError::BadRequest(m) => write!(f, "bad request: {m}"),
            VnetError::UnknownSnapshot(name) => write!(f, "unknown snapshot '{name}'"),
            VnetError::UnknownSection(id) => write!(f, "unknown section '{id}'"),
            VnetError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited; retry after {retry_after_ms} ms")
            }
            VnetError::QueueFull { in_flight, limit } => {
                write!(f, "queue full: {in_flight} in flight (limit {limit})")
            }
            VnetError::Timeout { millis } => write!(f, "timed out after {millis} ms"),
            VnetError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for VnetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VnetError::Io(e) => Some(e),
            VnetError::Graph(e) => Some(e),
            VnetError::Json(e) => Some(e),
            VnetError::Api(e) => Some(e),
            VnetError::CrawlAborted { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VnetError {
    fn from(e: std::io::Error) -> Self {
        VnetError::Io(e)
    }
}
impl From<vnet_graph::GraphError> for VnetError {
    fn from(e: vnet_graph::GraphError) -> Self {
        VnetError::Graph(e)
    }
}
impl From<serde_json::Error> for VnetError {
    fn from(e: serde_json::Error) -> Self {
        VnetError::Json(e)
    }
}
impl From<vnet_twittersim::ApiError> for VnetError {
    fn from(e: vnet_twittersim::ApiError) -> Self {
        VnetError::Api(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, VnetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            VnetError::Io(std::io::Error::other("x")),
            VnetError::Inconsistent("x".into()),
            VnetError::InvalidInput("x".into()),
            VnetError::BadRequest("x".into()),
            VnetError::UnknownSnapshot("x".into()),
            VnetError::UnknownSection("x".into()),
            VnetError::RateLimited { retry_after_ms: 900_000 },
            VnetError::QueueFull { in_flight: 4, limit: 4 },
            VnetError::Timeout { millis: 10 },
            VnetError::ShuttingDown,
        ];
        let mut codes: Vec<&str> = errors.iter().map(|e| e.code()).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate error codes");
    }

    #[test]
    fn source_chains_through_wrappers() {
        use std::error::Error as _;
        let e = VnetError::from(std::io::Error::other("disk on fire"));
        assert!(e.source().is_some());
        assert_eq!(e.code(), "io");
        assert!(e.to_string().contains("disk on fire"));
        let aborted = VnetError::CrawlAborted {
            passes: 3,
            error: vnet_twittersim::ApiError::ServerError,
        };
        assert!(aborted.source().is_some());
        assert!(aborted.to_string().contains("3 pass"));
    }
}
