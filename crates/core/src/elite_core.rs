//! Validation of the paper's §IV-C conjecture — the future work the
//! authors deferred, implemented.
//!
//! "We conjecture, that the larger reciprocity rate viz-a-viz the whole
//! Twitter graph is due to a larger core of publicly relevant and
//! consequential personalities within this sub-graph. We leave validating
//! this assertion for future work."
//!
//! Validation protocol: decompose the verified graph into k-cores, then
//! test the conjecture's two claims —
//!
//! 1. **reciprocity is concentrated in the core**: the reciprocity of the
//!    sub-graph induced by the innermost cores exceeds the graph-wide rate,
//!    and reciprocity rises monotonically-ish with coreness;
//! 2. **the core is "consequential"**: core members' global reach
//!    (followers) exceeds the periphery's.

use crate::dataset::Dataset;
use serde::Serialize;
use vnet_algos::kcore::k_core_decomposition;
use vnet_algos::reciprocity::reciprocity;
use vnet_graph::induced_subgraph;

/// Reciprocity and reach within one coreness band.
#[derive(Debug, Clone, Serialize)]
pub struct CoreBand {
    /// Lower coreness bound of the band (inclusive).
    pub min_coreness: u32,
    /// Members in the band-and-above core.
    pub members: usize,
    /// Reciprocity of the induced sub-graph of the band-and-above core.
    pub reciprocity: f64,
    /// Mean global follower count of members.
    pub mean_followers: f64,
}

/// Results of the §IV-C conjecture validation.
#[derive(Debug, Clone, Serialize)]
pub struct EliteCoreReport {
    /// Graph degeneracy (maximum coreness).
    pub degeneracy: u32,
    /// Graph-wide reciprocity (the paper's 33.7%).
    pub overall_reciprocity: f64,
    /// Reciprocity/reach by nested core (quartile thresholds of coreness
    /// plus the innermost core).
    pub bands: Vec<CoreBand>,
    /// Claim 1: innermost-core reciprocity exceeds the overall rate.
    pub core_reciprocity_elevated: bool,
    /// Claim 2: innermost-core members out-reach the periphery.
    pub core_reach_elevated: bool,
}

/// Run the validation. Bands are taken at coreness quartiles and the
/// degeneracy core.
pub fn elite_core_analysis(dataset: &Dataset) -> EliteCoreReport {
    let g = &dataset.graph;
    let decomp = k_core_decomposition(g);
    let overall = reciprocity(g);
    let followers = dataset.followers();

    // Quartile thresholds over nonzero coreness.
    let mut nonzero: Vec<u32> =
        decomp.coreness.iter().copied().filter(|&c| c > 0).collect();
    nonzero.sort_unstable();
    let q = |p: f64| -> u32 {
        if nonzero.is_empty() {
            0
        } else {
            nonzero[((nonzero.len() - 1) as f64 * p) as usize]
        }
    };
    let mut thresholds = vec![0u32, q(0.25), q(0.5), q(0.75), decomp.degeneracy];
    thresholds.dedup();

    let bands: Vec<CoreBand> = thresholds
        .iter()
        .map(|&k| {
            let members = decomp.k_core_members(k);
            let sub = induced_subgraph(g, &members);
            let mean_followers = if members.is_empty() {
                0.0
            } else {
                members.iter().map(|&v| followers[v as usize]).sum::<f64>()
                    / members.len() as f64
            };
            CoreBand {
                min_coreness: k,
                members: members.len(),
                reciprocity: reciprocity(&sub.graph),
                mean_followers,
            }
        })
        .collect();

    let innermost = bands.last().expect("at least the 0-band exists");
    let periphery_reach = bands.first().map(|b| b.mean_followers).unwrap_or(0.0);
    EliteCoreReport {
        degeneracy: decomp.degeneracy,
        overall_reciprocity: overall,
        core_reciprocity_elevated: innermost.reciprocity > overall,
        core_reach_elevated: innermost.mean_followers > periphery_reach,
        bands,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use crate::Dataset;

    #[test]
    fn conjecture_validates_on_calibrated_network() {
        // Reproduction scale: the fame-concentration effect behind the
        // conjecture is a tail phenomenon and needs a core of hundreds of
        // members to rise above sampling noise (at 4k nodes the innermost
        // core holds only ~100 users).
        let ds = Dataset::build(&SynthesisConfig::default(), &vnet_ctx::AnalysisCtx::quiet());
        let r = elite_core_analysis(&ds);
        assert!(r.degeneracy >= 3, "degeneracy {}", r.degeneracy);
        assert!(r.bands.len() >= 3);
        // Claim 1: the elite core reciprocates more than the graph at large.
        assert!(
            r.core_reciprocity_elevated,
            "innermost reciprocity {:.3} vs overall {:.3}",
            r.bands.last().unwrap().reciprocity,
            r.overall_reciprocity
        );
        // Claim 2: the core is consequential (higher global reach).
        assert!(
            r.core_reach_elevated,
            "core reach {:.0} vs periphery {:.0}",
            r.bands.last().unwrap().mean_followers,
            r.bands[0].mean_followers
        );
        // Bands are nested: member counts decrease with the threshold.
        for w in r.bands.windows(2) {
            assert!(w[1].members <= w[0].members);
        }
    }

    #[test]
    fn bands_cover_whole_graph_at_zero_threshold() {
        let ds = Dataset::build(&SynthesisConfig::small(), &vnet_ctx::AnalysisCtx::quiet());
        let r = elite_core_analysis(&ds);
        assert_eq!(r.bands[0].members, ds.graph.node_count());
        assert!((r.bands[0].reciprocity - r.overall_reciprocity).abs() < 1e-12);
    }
}
