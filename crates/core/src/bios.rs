//! Section IV-E, Figure 4 and Tables I & II: bio text mining.

use crate::dataset::Dataset;
use serde::Serialize;
use vnet_ctx::AnalysisCtx;
use vnet_textmine::wordcloud::wordcloud_weights;
use vnet_textmine::NgramCounter;

/// One row of a Table I/II-style n-gram ranking.
#[derive(Debug, Clone, Serialize)]
pub struct NgramRow {
    /// Display form ("Official Twitter Account").
    pub ngram: String,
    /// Occurrences.
    pub occurrences: u64,
}

/// One word-cloud entry of Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct CloudWord {
    /// The word.
    pub word: String,
    /// Corpus count.
    pub count: u64,
    /// Relative weight (1.0 for the most frequent word).
    pub weight: f64,
}

/// Bio-mining results.
#[derive(Debug, Clone, Serialize)]
pub struct BioReport {
    /// Figure 4: top unigrams with cloud weights.
    pub wordcloud: Vec<CloudWord>,
    /// Table I: top bigrams.
    pub top_bigrams: Vec<NgramRow>,
    /// Table II: top trigrams.
    pub top_trigrams: Vec<NgramRow>,
    /// Bios mined.
    pub documents: usize,
}

/// Mine all bios in the dataset; `k` rows per table (the paper prints 15).
/// The n-gram counting pass is recorded as a sub-span through `ctx`, plus
/// a `text.documents` counter.
pub fn bio_analysis(dataset: &Dataset, k: usize, ctx: &AnalysisCtx) -> BioReport {
    let mut counter = NgramCounter::new();
    {
        let _span = ctx.span("analysis.bios.ngrams");
        for p in &dataset.profiles {
            counter.add_document(&p.bio);
        }
    }
    ctx.obs().set_counter("text.documents", &[], counter.documents() as u64);
    let to_rows = |v: Vec<vnet_textmine::RankedNgram>| {
        v.into_iter().map(|r| NgramRow { ngram: r.display, occurrences: r.count }).collect()
    };
    BioReport {
        wordcloud: wordcloud_weights(&counter, 40, 8.0, 42.0)
            .into_iter()
            .map(|e| CloudWord { word: e.word, count: e.count, weight: e.weight })
            .collect(),
        top_bigrams: to_rows(counter.top_k(2, k)),
        top_trigrams: to_rows(counter.top_k(3, k)),
        documents: counter.documents(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;

    #[test]
    fn bio_mining_reproduces_table_headliners() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let r = bio_analysis(&ds, 15, &ctx);
        assert_eq!(r.documents, ds.profiles.len());
        assert_eq!(r.top_bigrams.len(), 15);
        // Paper Table I rank 1: "Official Twitter", by a clear margin
        // (the paper's margin is ~5×; at 3k bios we only require a gap).
        assert_eq!(r.top_bigrams[0].ngram, "Official Twitter");
        assert!(r.top_bigrams[0].occurrences as f64 > 1.4 * r.top_bigrams[2].occurrences as f64);
        // Paper Table II rank 1: "Official Twitter Account".
        assert_eq!(r.top_trigrams[0].ngram, "Official Twitter Account");
        // Figure 4 themes present among the cloud words.
        let words: Vec<&str> = r.wordcloud.iter().map(|w| w.word.as_str()).collect();
        for expected in ["official", "news"] {
            assert!(words.contains(&expected), "missing cloud word {expected}: {words:?}");
        }
        // Weights normalized.
        assert_eq!(r.wordcloud[0].weight, 1.0);
    }
}
