//! Pre-0.2.0 entrypoints, kept as thin deprecated shims for one release.
//!
//! The 0.2.0 API redesign threads one [`AnalysisCtx`] (thread pool +
//! observability handle) through the pipeline, collapsing every
//! `foo`/`foo_observed` and `foo`/`foo_pool` pair into a single
//! context-taking entrypoint. Every shim here delegates to its
//! replacement — same results, same counters, same spans — and each
//! module `pub use`s its old names so existing paths keep compiling.
//! See `docs/API.md` for the full migration table.

#![allow(deprecated)]

use crate::activity::ActivityReport;
use crate::basic::BasicReport;
use crate::bios::BioReport;
use crate::centrality::CentralityReport;
use crate::dataset::{Dataset, SynthesisConfig};
use crate::degrees::DegreeReport;
use crate::eigen::EigenReport;
use crate::report::{AnalysisOptions, AnalysisReport};
use crate::separation::SeparationReport;
use rand::Rng;
use std::sync::Arc;
use vnet_ctx::AnalysisCtx;
use vnet_obs::Obs;
use vnet_par::ParPool;
use vnet_powerlaw::FitOptions;
use vnet_twittersim::{ApiError, FaultPlan};

/// Run every analysis of the paper on `dataset` (serial, unobserved).
#[deprecated(
    since = "0.2.0",
    note = "use `run_analysis(dataset, opts, &AnalysisCtx)`; see docs/API.md"
)]
pub fn run_full_analysis(dataset: &Dataset, opts: &AnalysisOptions) -> AnalysisReport {
    crate::report::run_analysis(dataset, opts, &AnalysisCtx::with_threads(opts.threads))
}

/// [`run_full_analysis`] recording spans and counters into `obs`.
#[deprecated(
    since = "0.2.0",
    note = "use `run_analysis(dataset, opts, &AnalysisCtx)`; see docs/API.md"
)]
pub fn run_full_analysis_observed(
    dataset: &Dataset,
    opts: &AnalysisOptions,
    obs: &Obs,
) -> AnalysisReport {
    let ctx = AnalysisCtx::from_obs(ParPool::new(opts.threads), obs);
    crate::report::run_analysis(dataset, opts, &ctx)
}

/// §IV-A basic analysis with sub-spans recorded into `obs`.
#[deprecated(
    since = "0.2.0",
    note = "use `basic_analysis(dataset, samples, rng, &AnalysisCtx)`; see docs/API.md"
)]
pub fn basic_analysis_observed<R: Rng + ?Sized>(
    dataset: &Dataset,
    clustering_samples: usize,
    rng: &mut R,
    obs: &Obs,
) -> BasicReport {
    let ctx = AnalysisCtx::from_obs(ParPool::serial(), obs);
    crate::basic::basic_analysis(dataset, clustering_samples, rng, &ctx)
}

/// Out-degree power-law analysis, bootstrap fanned out over `pool`.
#[deprecated(
    since = "0.2.0",
    note = "use `degree_analysis(dataset, opts, reps, rng, &AnalysisCtx)`; see docs/API.md"
)]
pub fn degree_analysis_observed<R: Rng + ?Sized>(
    dataset: &Dataset,
    opts: &FitOptions,
    bootstrap_reps: usize,
    pool: &ParPool,
    rng: &mut R,
    obs: &Obs,
) -> vnet_powerlaw::Result<DegreeReport> {
    let ctx = AnalysisCtx::from_obs(*pool, obs);
    crate::degrees::degree_analysis(dataset, opts, bootstrap_reps, rng, &ctx)
}

/// Laplacian eigenvalue analysis, Lanczos and bootstrap over `pool`.
#[deprecated(
    since = "0.2.0",
    note = "use `eigen_analysis(dataset, k, steps, opts, reps, rng, &AnalysisCtx)`; see docs/API.md"
)]
#[allow(clippy::too_many_arguments)]
pub fn eigen_analysis_observed<R: Rng + ?Sized>(
    dataset: &Dataset,
    k: usize,
    lanczos_steps: usize,
    opts: &FitOptions,
    bootstrap_reps: usize,
    pool: &ParPool,
    rng: &mut R,
    obs: &Obs,
) -> vnet_powerlaw::Result<EigenReport> {
    let ctx = AnalysisCtx::from_obs(*pool, obs);
    crate::eigen::eigen_analysis(dataset, k, lanczos_steps, opts, bootstrap_reps, rng, &ctx)
}

/// Degrees-of-separation analysis, BFS sweep over `pool`.
#[deprecated(
    since = "0.2.0",
    note = "use `separation_analysis(dataset, sources, rng, &AnalysisCtx)`; see docs/API.md"
)]
pub fn separation_analysis_observed<R: Rng + ?Sized>(
    dataset: &Dataset,
    sources: usize,
    pool: &ParPool,
    rng: &mut R,
    obs: &Obs,
) -> SeparationReport {
    let ctx = AnalysisCtx::from_obs(*pool, obs);
    crate::separation::separation_analysis(dataset, sources, rng, &ctx)
}

/// Bio mining with the n-gram pass recorded into `obs`.
#[deprecated(
    since = "0.2.0",
    note = "use `bio_analysis(dataset, k, &AnalysisCtx)`; see docs/API.md"
)]
pub fn bio_analysis_observed(dataset: &Dataset, k: usize, obs: &Obs) -> BioReport {
    let ctx = AnalysisCtx::from_obs(ParPool::serial(), obs);
    crate::bios::bio_analysis(dataset, k, &ctx)
}

/// Figure 5 centrality analysis, both solvers over `pool`.
#[deprecated(
    since = "0.2.0",
    note = "use `centrality_analysis(dataset, pivots, rng, &AnalysisCtx)`; see docs/API.md"
)]
pub fn centrality_analysis_observed<R: Rng + ?Sized>(
    dataset: &Dataset,
    pivots: usize,
    pool: &ParPool,
    rng: &mut R,
    obs: &Obs,
) -> CentralityReport {
    let ctx = AnalysisCtx::from_obs(*pool, obs);
    crate::centrality::centrality_analysis(dataset, pivots, rng, &ctx)
}

/// Section V activity battery with sub-spans recorded into `obs`.
#[deprecated(
    since = "0.2.0",
    note = "use `activity_analysis(dataset, lag_cap, &AnalysisCtx)`; see docs/API.md"
)]
pub fn activity_analysis_observed(
    dataset: &Dataset,
    lag_cap: usize,
    obs: &Obs,
) -> vnet_timeseries::Result<ActivityReport> {
    let ctx = AnalysisCtx::from_obs(ParPool::serial(), obs);
    crate::activity::activity_analysis(dataset, lag_cap, &ctx)
}

impl Dataset {
    /// Synthesize a dataset end-to-end (unobserved).
    #[deprecated(
        since = "0.2.0",
        note = "use `Dataset::build(config, &AnalysisCtx)`; see docs/API.md"
    )]
    pub fn synthesize(config: &SynthesisConfig) -> Dataset {
        Dataset::build(config, &AnalysisCtx::quiet())
    }

    /// [`Dataset::synthesize`] with the pipeline instrumented into `obs`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Dataset::build(config, &AnalysisCtx)`; see docs/API.md"
    )]
    pub fn synthesize_observed(config: &SynthesisConfig, obs: &Arc<Obs>) -> Dataset {
        Dataset::build(config, &AnalysisCtx::new(ParPool::serial(), Arc::clone(obs)))
    }

    /// Synthesize through a fault plan (unobserved), surfacing the raw
    /// [`ApiError`] on abort.
    #[deprecated(
        since = "0.2.0",
        note = "use `Dataset::build_with_faults(config, plan, &AnalysisCtx)`; see docs/API.md"
    )]
    pub fn synthesize_with_faults(
        config: &SynthesisConfig,
        plan: &FaultPlan,
    ) -> Result<Dataset, ApiError> {
        Dataset::build_with_faults_inner(config, plan, &AnalysisCtx::quiet())
            .map_err(|(error, _passes)| error)
    }

    /// [`Dataset::synthesize_with_faults`] instrumented into `obs`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Dataset::build_with_faults(config, plan, &AnalysisCtx)`; see docs/API.md"
    )]
    pub fn synthesize_with_faults_observed(
        config: &SynthesisConfig,
        plan: &FaultPlan,
        obs: &Arc<Obs>,
    ) -> Result<Dataset, ApiError> {
        let ctx = AnalysisCtx::new(ParPool::serial(), Arc::clone(obs));
        Dataset::build_with_faults_inner(config, plan, &ctx).map_err(|(error, _passes)| error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deprecation contract: every shim delegates to its replacement
    /// and produces identical bytes.
    #[test]
    fn shimmed_driver_matches_ctx_driver() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let opts = AnalysisOptions::quick();
        let old = run_full_analysis(&ds, &opts);
        let new = crate::report::run_analysis(&ds, &opts, &AnalysisCtx::with_threads(opts.threads));
        assert_eq!(
            serde_json::to_string(&old).unwrap(),
            serde_json::to_string(&new).unwrap(),
            "deprecated shim diverged from the ctx entrypoint"
        );
    }

    #[test]
    fn shimmed_synthesize_matches_build() {
        let a = Dataset::synthesize(&SynthesisConfig::small());
        let b = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.activity, b.activity);
    }
}
