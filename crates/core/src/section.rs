//! Named analysis sections: the unit of work shared by the batch driver
//! ([`crate::report::run_analysis`]), the analysis service (`vnet-serve`),
//! and its result cache.
//!
//! Each [`Section`] is one paper artefact group with a stable string id.
//! [`run_analysis_section`] computes exactly one of them; the full-report
//! driver composes all eleven. Both paths share the per-section helpers
//! below, and every section seeds a **fresh** RNG from
//! `AnalysisOptions::seed` — so a section computed alone is bit-identical
//! to the same section inside a full run, which is what lets the service
//! cache single sections and still hand back batch-identical payloads.

use crate::activity::{activity_analysis, ActivityReport};
use crate::basic::{basic_analysis, BasicReport};
use crate::bios::{bio_analysis, BioReport};
use crate::categories::{category_analysis, CategoryReport};
use crate::centrality::{centrality_analysis, CentralityReport};
use crate::dataset::Dataset;
use crate::degrees::{degree_analysis, figure1, DegreeReport, Figure1};
use crate::eigen::{eigen_analysis, EigenReport};
use crate::elite_core::{elite_core_analysis, EliteCoreReport};
use crate::error::{Result, VnetError};
use crate::recip::{reciprocity_analysis, ReciprocityReport};
use crate::report::AnalysisOptions;
use crate::separation::{separation_analysis, SeparationReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Content, Serialize};
use vnet_ctx::AnalysisCtx;

/// One independently computable section of the analysis battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// §IV-A basic network analysis.
    Basic,
    /// Figure 1: profile-attribute marginals.
    Figure1,
    /// §IV-B discrete half + Figure 2.
    Degrees,
    /// §IV-B continuous half (Laplacian eigenvalues).
    Eigen,
    /// §IV-C reciprocity.
    Reciprocity,
    /// §IV-D + Figure 3: degrees of separation.
    Separation,
    /// §IV-E + Figure 4 + Tables I & II: bio mining.
    Bios,
    /// §IV-F + Figure 5: centrality vs reach.
    Centrality,
    /// §V + Figure 6: activity analysis.
    Activity,
    /// §IV-C conjecture validation (elite core).
    EliteCore,
    /// Bio-based user categorization.
    Categories,
}

impl Section {
    /// Every section, in full-report order.
    pub const ALL: [Section; 11] = [
        Section::Basic,
        Section::Figure1,
        Section::Degrees,
        Section::Eigen,
        Section::Reciprocity,
        Section::Separation,
        Section::Bios,
        Section::Centrality,
        Section::Activity,
        Section::EliteCore,
        Section::Categories,
    ];

    /// Stable string id, used in wire requests, cache keys, and span names.
    pub fn id(&self) -> &'static str {
        match self {
            Section::Basic => "basic",
            Section::Figure1 => "figure1",
            Section::Degrees => "degrees",
            Section::Eigen => "eigen",
            Section::Reciprocity => "reciprocity",
            Section::Separation => "separation",
            Section::Bios => "bios",
            Section::Centrality => "centrality",
            Section::Activity => "activity",
            Section::EliteCore => "elite_core",
            Section::Categories => "categories",
        }
    }
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

impl std::str::FromStr for Section {
    type Err = VnetError;

    fn from_str(s: &str) -> Result<Self> {
        Section::ALL
            .into_iter()
            .find(|sec| sec.id() == s)
            .ok_or_else(|| VnetError::UnknownSection(s.to_string()))
    }
}

impl Serialize for Section {
    fn to_content(&self) -> Content {
        Content::Str(self.id().to_string())
    }
}

/// The result of one section, ready to serialize. Serialization is
/// untagged — the payload is exactly what the corresponding
/// `AnalysisReport` field serializes to, so a section served alone is
/// byte-identical to the same section cut out of a full report.
#[derive(Debug, Clone)]
pub enum SectionReport {
    /// §IV-A.
    Basic(BasicReport),
    /// Figure 1.
    Figure1(Figure1),
    /// §IV-B discrete + Figure 2.
    Degrees(DegreeReport),
    /// §IV-B continuous.
    Eigen(EigenReport),
    /// §IV-C.
    Reciprocity(ReciprocityReport),
    /// §IV-D + Figure 3.
    Separation(SeparationReport),
    /// §IV-E + Figure 4 + Tables I & II.
    Bios(BioReport),
    /// §IV-F + Figure 5.
    Centrality(CentralityReport),
    /// §V + Figure 6.
    Activity(ActivityReport),
    /// §IV-C conjecture validation.
    EliteCore(EliteCoreReport),
    /// User categorization.
    Categories(CategoryReport),
}

impl SectionReport {
    /// Which section this payload belongs to.
    pub fn section(&self) -> Section {
        match self {
            SectionReport::Basic(_) => Section::Basic,
            SectionReport::Figure1(_) => Section::Figure1,
            SectionReport::Degrees(_) => Section::Degrees,
            SectionReport::Eigen(_) => Section::Eigen,
            SectionReport::Reciprocity(_) => Section::Reciprocity,
            SectionReport::Separation(_) => Section::Separation,
            SectionReport::Bios(_) => Section::Bios,
            SectionReport::Centrality(_) => Section::Centrality,
            SectionReport::Activity(_) => Section::Activity,
            SectionReport::EliteCore(_) => Section::EliteCore,
            SectionReport::Categories(_) => Section::Categories,
        }
    }
}

impl Serialize for SectionReport {
    fn to_content(&self) -> Content {
        match self {
            SectionReport::Basic(r) => r.to_content(),
            SectionReport::Figure1(r) => r.to_content(),
            SectionReport::Degrees(r) => r.to_content(),
            SectionReport::Eigen(r) => r.to_content(),
            SectionReport::Reciprocity(r) => r.to_content(),
            SectionReport::Separation(r) => r.to_content(),
            SectionReport::Bios(r) => r.to_content(),
            SectionReport::Centrality(r) => r.to_content(),
            SectionReport::Activity(r) => r.to_content(),
            SectionReport::EliteCore(r) => r.to_content(),
            SectionReport::Categories(r) => r.to_content(),
        }
    }
}

fn analysis_err(section: Section, e: impl std::fmt::Display) -> VnetError {
    VnetError::Analysis { section, message: e.to_string() }
}

/// Map a power-law fit failure: invalid *samples* (non-finite values
/// smuggled through dataset I/O) become [`VnetError::InvalidInput`] so the
/// service reports them as a client-data problem, not a computation
/// failure; everything else stays an analysis error.
pub(crate) fn fit_err(section: Section, e: vnet_powerlaw::PowerLawError) -> VnetError {
    match e {
        vnet_powerlaw::PowerLawError::InvalidData(m) => {
            VnetError::InvalidInput(format!("section '{}': {m}", section.id()))
        }
        other => analysis_err(section, other),
    }
}

/// Fresh per-section RNG: one seed, one stream per section, so a section
/// computed alone matches the same section inside a full run.
fn section_rng(opts: &AnalysisOptions) -> StdRng {
    StdRng::seed_from_u64(opts.seed)
}

pub(crate) fn sec_basic(ds: &Dataset, opts: &AnalysisOptions, ctx: &AnalysisCtx) -> BasicReport {
    let _span = ctx.span("analysis.basic");
    basic_analysis(ds, opts.clustering_samples, &mut section_rng(opts), ctx)
}

pub(crate) fn sec_figure1(ds: &Dataset, opts: &AnalysisOptions, ctx: &AnalysisCtx) -> Figure1 {
    let _span = ctx.span("analysis.figure1");
    figure1(ds, opts.fig1_bins)
}

pub(crate) fn sec_degrees(
    ds: &Dataset,
    opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> Result<DegreeReport> {
    let _span = ctx.span("analysis.degrees");
    degree_analysis(ds, &opts.fit, opts.bootstrap_reps, &mut section_rng(opts), ctx)
        .map_err(|e| fit_err(Section::Degrees, e))
}

pub(crate) fn sec_eigen(
    ds: &Dataset,
    opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> Result<EigenReport> {
    let _span = ctx.span("analysis.eigen");
    eigen_analysis(
        ds,
        opts.eigen_k,
        opts.lanczos_steps,
        &opts.fit,
        opts.bootstrap_reps,
        &mut section_rng(opts),
        ctx,
    )
    .map_err(|e| fit_err(Section::Eigen, e))
}

pub(crate) fn sec_reciprocity(
    ds: &Dataset,
    _opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> ReciprocityReport {
    let _span = ctx.span("analysis.reciprocity");
    reciprocity_analysis(ds)
}

pub(crate) fn sec_separation(
    ds: &Dataset,
    opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> SeparationReport {
    let _span = ctx.span("analysis.separation");
    separation_analysis(ds, opts.distance_sources, &mut section_rng(opts), ctx)
}

pub(crate) fn sec_bios(ds: &Dataset, opts: &AnalysisOptions, ctx: &AnalysisCtx) -> BioReport {
    let _span = ctx.span("analysis.bios");
    bio_analysis(ds, opts.ngram_rows, ctx)
}

pub(crate) fn sec_centrality(
    ds: &Dataset,
    opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> CentralityReport {
    let _span = ctx.span("analysis.centrality");
    centrality_analysis(ds, opts.betweenness_pivots, &mut section_rng(opts), ctx)
}

pub(crate) fn sec_activity(
    ds: &Dataset,
    opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> Result<ActivityReport> {
    let _span = ctx.span("analysis.activity");
    activity_analysis(ds, opts.lag_cap, ctx).map_err(|e| analysis_err(Section::Activity, e))
}

pub(crate) fn sec_elite_core(
    ds: &Dataset,
    _opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> EliteCoreReport {
    let _span = ctx.span("analysis.elite_core");
    elite_core_analysis(ds)
}

pub(crate) fn sec_categories(
    ds: &Dataset,
    _opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> CategoryReport {
    let _span = ctx.span("analysis.categories");
    category_analysis(ds)
}

/// Compute exactly one section of the analysis battery.
///
/// This is the entrypoint the `vnet-serve` service, its result cache, and
/// `repro --exp` all drive. The section's payload is bit-identical to the
/// same field of [`crate::report::run_analysis`]'s full report for the
/// same dataset and options, at any thread count.
pub fn run_analysis_section(
    dataset: &Dataset,
    section: Section,
    opts: &AnalysisOptions,
    ctx: &AnalysisCtx,
) -> Result<SectionReport> {
    Ok(match section {
        Section::Basic => SectionReport::Basic(sec_basic(dataset, opts, ctx)),
        Section::Figure1 => SectionReport::Figure1(sec_figure1(dataset, opts, ctx)),
        Section::Degrees => SectionReport::Degrees(sec_degrees(dataset, opts, ctx)?),
        Section::Eigen => SectionReport::Eigen(sec_eigen(dataset, opts, ctx)?),
        Section::Reciprocity => SectionReport::Reciprocity(sec_reciprocity(dataset, opts, ctx)),
        Section::Separation => SectionReport::Separation(sec_separation(dataset, opts, ctx)),
        Section::Bios => SectionReport::Bios(sec_bios(dataset, opts, ctx)),
        Section::Centrality => SectionReport::Centrality(sec_centrality(dataset, opts, ctx)),
        Section::Activity => SectionReport::Activity(sec_activity(dataset, opts, ctx)?),
        Section::EliteCore => SectionReport::EliteCore(sec_elite_core(dataset, opts, ctx)),
        Section::Categories => SectionReport::Categories(sec_categories(dataset, opts, ctx)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;

    #[test]
    fn ids_roundtrip_through_fromstr() {
        for sec in Section::ALL {
            let parsed: Section = sec.id().parse().unwrap();
            assert_eq!(parsed, sec);
        }
        match "nope".parse::<Section>() {
            Err(VnetError::UnknownSection(s)) => assert_eq!(s, "nope"),
            other => panic!("expected UnknownSection, got {other:?}"),
        }
    }

    #[test]
    fn invalid_fit_samples_surface_as_invalid_input() {
        let e = fit_err(
            Section::Eigen,
            vnet_powerlaw::PowerLawError::InvalidData("non-finite value"),
        );
        assert_eq!(e.code(), "invalid_input");
        assert!(e.to_string().contains("eigen"), "message lost the section: {e}");
        // Other fit failures remain analysis errors.
        let e = fit_err(
            Section::Degrees,
            vnet_powerlaw::PowerLawError::TooFewObservations { needed: 50, got: 3 },
        );
        assert_eq!(e.code(), "analysis");
    }

    #[test]
    fn section_alone_matches_full_report_field() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let opts = AnalysisOptions::quick();
        let full = crate::report::run_analysis(&ds, &opts, &ctx);
        let alone = run_analysis_section(&ds, Section::Separation, &opts, &ctx).unwrap();
        let from_full = serde_json::to_string(&full.separation).unwrap();
        let standalone = serde_json::to_string(&alone).unwrap();
        assert_eq!(from_full, standalone, "standalone section diverged from full run");
        assert_eq!(alone.section(), Section::Separation);
    }

    #[test]
    fn section_is_thread_count_invariant() {
        let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
        let opts = AnalysisOptions::quick();
        let serial =
            run_analysis_section(&ds, Section::Centrality, &opts, &AnalysisCtx::quiet()).unwrap();
        let par = run_analysis_section(
            &ds,
            Section::Centrality,
            &opts,
            &AnalysisCtx::with_threads(4),
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&par).unwrap()
        );
    }
}
