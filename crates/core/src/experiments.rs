//! The experiment registry: every table and figure of the paper, with its
//! published values, mapped to the modules that regenerate it.
//!
//! `vnet-bench`'s `repro` binary iterates this registry; `EXPERIMENTS.md`
//! is its rendered output plus measured values.

use serde::Serialize;

/// One reproducible artefact of the paper.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Experiment {
    /// Registry id (used as `repro --exp <id>`).
    pub id: &'static str,
    /// Paper artefact ("Figure 2", "Table I", "§IV-C in-text").
    pub artefact: &'static str,
    /// What it shows.
    pub description: &'static str,
    /// The paper's headline value(s), verbatim.
    pub paper_values: &'static str,
    /// Module implementing it.
    pub module: &'static str,
    /// Shape expectation checked by the harness.
    pub shape_expectation: &'static str,
}

/// Every table and figure in the paper's evaluation, plus the in-text
/// statistics of Sections III–V.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "basic",
        artefact: "§III + §IV-A in-text",
        description: "density, isolated users, giant SCC, WCCs, attracting components, clustering, assortativity",
        paper_values: "density 0.00148; 6,027 isolated; giant SCC 224,872 (97.24%); 6,251 WCCs; 6,091 attracting; clustering 0.1583; assortativity −0.04",
        module: "verified_net::basic",
        shape_expectation: "sparse, giant SCC > 90%, attracting ≈ isolated + sinks, clustering low, assortativity slightly negative",
    },
    Experiment {
        id: "fig1",
        artefact: "Figure 1",
        description: "log-scaled distributions of friends, followers, list memberships, statuses",
        paper_values: "four heavy-tailed marginals",
        module: "verified_net::degrees::figure1",
        shape_expectation: "each marginal spans >2 orders of magnitude with monotone-decaying tail",
    },
    Experiment {
        id: "fig2",
        artefact: "Figure 2 + §IV-B",
        description: "out-degree distribution and discrete power-law fit with Vuong tests",
        paper_values: "α 3.24, xmin 1334, p 0.13; Vuong LR 2-3 digits vs log-normal/Poisson/exponential",
        module: "verified_net::degrees",
        shape_expectation: "power law fits (p > 0.1), α near 3.2, Vuong prefers power law over all alternatives",
    },
    Experiment {
        id: "eigen",
        artefact: "§IV-B (eigenvalues)",
        description: "top Laplacian eigenvalues, continuous power-law fit",
        paper_values: "α 3.18, xmin 9377.26, p 0.3",
        module: "verified_net::eigen",
        shape_expectation: "eigenvalue tail fits a power law with α near the degree exponent",
    },
    Experiment {
        id: "reciprocity",
        artefact: "§IV-C in-text",
        description: "edge reciprocity vs whole Twitter and Flickr",
        paper_values: "33.7% (vs 22.1% Twitter, 68% Flickr)",
        module: "verified_net::recip",
        shape_expectation: "reciprocity above 22.1% and below 68%",
    },
    Experiment {
        id: "fig3",
        artefact: "Figure 3 + §IV-D",
        description: "degrees-of-separation distribution",
        paper_values: "mean 2.74 (vs 4.12 sampled / 3.43 search whole-Twitter)",
        module: "verified_net::separation",
        shape_expectation: "mean < 3.43, mode at distance 2-3",
    },
    Experiment {
        id: "fig4",
        artefact: "Figure 4",
        description: "word cloud of most frequent bio unigrams",
        paper_values: "journalism/professional/brand themes dominate",
        module: "verified_net::bios",
        shape_expectation: "official/news/journalist-type words in the top ranks",
    },
    Experiment {
        id: "table1",
        artefact: "Table I",
        description: "top-15 bio bigrams",
        paper_values: "Official Twitter 12166; Official Account 2788; Award Winning 2270; ...",
        module: "verified_net::bios",
        shape_expectation: "'Official Twitter' rank 1 by a wide margin; award winning / follow us / co founder present",
    },
    Experiment {
        id: "table2",
        artefact: "Table II",
        description: "top-15 bio trigrams",
        paper_values: "Official Twitter Account 5457; Official Twitter Page 1774; ...",
        module: "verified_net::bios",
        shape_expectation: "'Official Twitter Account' rank 1, 'Official Twitter Page' behind it",
    },
    Experiment {
        id: "fig5",
        artefact: "Figure 5 + §IV-F",
        description: "centrality vs reach: 6 log-log panels with GAM splines",
        paper_values: "PageRank vs followers/lists especially strong; betweenness lukewarm then strong at extremes; followers rise with statuses and lists",
        module: "verified_net::centrality",
        shape_expectation: "all six correlations positive; PageRank panels strongest; spline bands bracket fits",
    },
    Experiment {
        id: "fig6",
        artefact: "Figure 6 + §V (portmanteau)",
        description: "calendar heatmap; Ljung-Box & Box-Pierce up to lag 185",
        paper_values: "max p 3.81e-38 (LB), 7.57e-38 (BP); Sundays reliably lower",
        module: "verified_net::activity",
        shape_expectation: "vanishing portmanteau p; Sunday is the weekly minimum",
    },
    Experiment {
        id: "adf",
        artefact: "§V (stationarity)",
        description: "Augmented Dickey-Fuller with constant + trend",
        paper_values: "statistic −3.86 vs critical −3.42 (95%) ⇒ stationary",
        module: "verified_net::activity",
        shape_expectation: "statistic below −3.42; stationarity concluded",
    },
    Experiment {
        id: "pelt",
        artefact: "§V (change-points)",
        description: "PELT with penalty cool-down consensus",
        paper_values: "two change-points: 23-25 Dec 2017 and first week of April 2018",
        module: "verified_net::activity",
        shape_expectation: "exactly the Christmas and early-April change-points survive consensus",
    },
    Experiment {
        id: "elite-core",
        artefact: "§IV-C conjecture (deferred future work)",
        description: "k-core validation: reciprocity and reach concentrate in the elite core",
        paper_values: "conjectured, not measured: 'a larger core of publicly relevant and consequential personalities'",
        module: "verified_net::elite_core",
        shape_expectation: "innermost-core reciprocity > overall; innermost-core mean followers > periphery",
    },
    Experiment {
        id: "deviations",
        artefact: "the paper's framing (abstract + §VI)",
        description: "deviation table: verified graph vs whole-Twitter-like null, all five headline contrasts",
        paper_values: "power law present vs absent; 33.7% vs 22.1% reciprocity; dissortativity; 2.74 vs 3.43-4.12 separation; many attracting components",
        module: "verified_net::deviations",
        shape_expectation: "every deviation direction reproduced against the matched null",
    },
    Experiment {
        id: "categories",
        artefact: "index term 'User Categorization' + §IV-E reading",
        description: "bio-keyword user categorization with per-category reach profiles",
        paper_values: "journalism dominates the verified elite",
        module: "verified_net::categories",
        shape_expectation: "journalist among top categories; news-adjacent share large",
    },
];

/// Look up an experiment by id.
pub fn experiment(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let artefacts: Vec<&str> = EXPERIMENTS.iter().map(|e| e.artefact).collect();
        for figure in ["Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6"] {
            assert!(
                artefacts.iter().any(|a| a.contains(figure)),
                "registry missing {figure}"
            );
        }
        for table in ["Table I", "Table II"] {
            assert!(
                artefacts.iter().any(|a| a.contains(table) && !a.contains("Tables")),
                "registry missing {table}"
            );
        }
    }

    #[test]
    fn ids_unique_and_lookup_works() {
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        assert!(experiment("fig2").is_some());
        assert!(experiment("nonexistent").is_none());
    }
}
