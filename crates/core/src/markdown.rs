//! Markdown rendering of an [`AnalysisReport`] — the machine-written
//! counterpart of `EXPERIMENTS.md`.
//!
//! `repro --markdown <file>` (and any downstream user) can turn a full
//! analysis into a self-contained paper-vs-measured document.

use crate::report::AnalysisReport;
use std::fmt::Write as _;

/// Render `report` as a Markdown document with paper-vs-measured tables.
pub fn render_markdown(report: &AnalysisReport) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let w = &mut out;

    let _ = writeln!(w, "# verified-net analysis report\n");
    let _ = writeln!(
        w,
        "Dataset: **{} English verified users**, **{} internal follow edges** \
         (paper: 231,246 / 79,213,811), {} days of activity.\n",
        report.dataset.users, report.dataset.edges, report.activity.days
    );

    let _ = writeln!(w, "## Headline statistics (§III, §IV-A)\n");
    let _ = writeln!(w, "| statistic | paper | measured |");
    let _ = writeln!(w, "|---|---|---|");
    let rows: Vec<(&str, String, String)> = vec![
        ("density", "0.00148".into(), format!("{:.5}", report.dataset.density)),
        (
            "isolated users",
            "6,027 (2.61%)".into(),
            format!(
                "{} ({:.2}%)",
                report.basic.isolated,
                100.0 * report.basic.isolated as f64 / report.basic.users.max(1) as f64
            ),
        ),
        (
            "giant SCC share",
            "97.24%".into(),
            format!("{:.2}%", 100.0 * report.basic.giant_scc_fraction),
        ),
        ("avg local clustering", "0.1583".into(), format!("{:.4}", report.basic.clustering)),
        (
            "degree assortativity (out→in)",
            "−0.04".into(),
            format!("{:.4}", report.basic.assortativity_out_in),
        ),
        (
            "reciprocity",
            "33.7%".into(),
            format!("{:.1}%", 100.0 * report.reciprocity.reciprocity),
        ),
        ("mean degrees of separation", "2.74".into(), format!("{:.2}", report.separation.mean)),
        ("out-degree power-law α", "3.24".into(), format!("{:.2}", report.degrees.alpha)),
        ("eigenvalue power-law α", "3.18".into(), format!("{:.2}", report.eigen.alpha)),
        ("ADF statistic", "−3.86".into(), format!("{:.2}", report.activity.adf_statistic)),
    ];
    for (name, paper, measured) in rows {
        let _ = writeln!(w, "| {name} | {paper} | {measured} |");
    }

    let _ = writeln!(w, "\n## Vuong model comparison (§IV-B)\n");
    let _ = writeln!(w, "| alternative | LR | statistic | p | verdict |");
    let _ = writeln!(w, "|---|---|---|---|---|");
    for v in &report.degrees.vuong {
        let _ = writeln!(
            w,
            "| {} | {:.1} | {:.2} | {:.2e} | {} |",
            v.alternative,
            v.lr,
            v.statistic,
            v.p_value,
            if v.lr > 0.0 { "power law preferred" } else { "alternative preferred" }
        );
    }

    let _ = writeln!(w, "\n## Table I — top bigrams (§IV-E)\n");
    let _ = writeln!(w, "| bigram | occurrences |");
    let _ = writeln!(w, "|---|---|");
    for row in &report.bios.top_bigrams {
        let _ = writeln!(w, "| {} | {} |", row.ngram, row.occurrences);
    }

    let _ = writeln!(w, "\n## Table II — top trigrams (§IV-E)\n");
    let _ = writeln!(w, "| trigram | occurrences |");
    let _ = writeln!(w, "|---|---|");
    for row in &report.bios.top_trigrams {
        let _ = writeln!(w, "| {} | {} |", row.ngram, row.occurrences);
    }

    let _ = writeln!(w, "\n## Figure 5 — centrality vs reach (§IV-F)\n");
    let _ = writeln!(w, "| panel | y vs x | Pearson (log) | Spearman | n |");
    let _ = writeln!(w, "|---|---|---|---|---|");
    for p in &report.centrality.panels {
        let _ = writeln!(
            w,
            "| ({}) | {} vs {} | {:.3} | {:.3} | {} |",
            p.id, p.y_metric, p.x_metric, p.pearson_log, p.spearman, p.n
        );
    }

    let _ = writeln!(w, "\n## Activity (§V)\n");
    let _ = writeln!(
        w,
        "Ljung-Box max p: **{:.2e}** (paper 3.81e-38) · Box-Pierce max p: \
         **{:.2e}** (paper 7.57e-38) · lag cap {}.",
        report.activity.ljung_box_max_p, report.activity.box_pierce_max_p, report.activity.lag_cap
    );
    let _ = writeln!(
        w,
        "\nADF {:.2} vs critical {:.2} → {}; KPSS (longest break-free segment) \
         {:.3} → piecewise stationarity {}.",
        report.activity.adf_statistic,
        report.activity.adf_crit_5pct,
        if report.activity.stationary { "stationary" } else { "unit root not rejected" },
        report.activity.kpss_segment_statistic,
        if report.activity.stationarity_confirmed { "confirmed" } else { "not confirmed" }
    );
    let _ = writeln!(w, "\nChange-points (paper: 23–25 Dec 2017, first week of April 2018):\n");
    for cp in &report.activity.changepoints {
        let _ = writeln!(w, "- {} (support {:.0}%)", cp.date, 100.0 * cp.support);
    }

    let _ = writeln!(w, "\n## Extensions\n");
    let inner = report.elite_core.bands.last();
    if let Some(inner) = inner {
        let _ = writeln!(
            w,
            "**Elite core (§IV-C conjecture):** degeneracy {}, innermost core \
             {} members at reciprocity {:.1}% (graph-wide {:.1}%) — conjecture {}.",
            report.elite_core.degeneracy,
            inner.members,
            100.0 * inner.reciprocity,
            100.0 * report.elite_core.overall_reciprocity,
            if report.elite_core.core_reciprocity_elevated && report.elite_core.core_reach_elevated
            {
                "validated"
            } else {
                "not validated at this scale"
            }
        );
    }
    let _ = writeln!(
        w,
        "\n**User categories:** news-adjacent share {:.1}%; top categories: {}.",
        100.0 * report.categories.news_share,
        report
            .categories
            .profiles
            .iter()
            .take(3)
            .map(|p| format!("{} ({:.1}%)", p.category, 100.0 * p.share))
            .collect::<Vec<_>>()
            .join(", ")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use crate::report::{run_analysis, AnalysisOptions};
    use crate::Dataset;
    use vnet_ctx::AnalysisCtx;

    #[test]
    fn renders_complete_document() {
        let ctx = AnalysisCtx::quiet();
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let report = run_analysis(&ds, &AnalysisOptions::quick(), &ctx);
        let md = render_markdown(&report);
        for heading in [
            "# verified-net analysis report",
            "## Headline statistics",
            "## Vuong model comparison",
            "## Table I",
            "## Table II",
            "## Figure 5",
            "## Activity",
            "## Extensions",
        ] {
            assert!(md.contains(heading), "missing heading {heading}");
        }
        assert!(md.contains("Official Twitter"));
        assert!(md.contains("power law preferred"));
        // Table rows are well-formed (every pipe row has the same arity in
        // the headline table).
        let headline: Vec<&str> = md
            .lines()
            .skip_while(|l| !l.starts_with("| statistic"))
            .take_while(|l| l.starts_with('|'))
            .collect();
        assert!(headline.len() >= 10);
        for row in &headline {
            assert_eq!(row.matches('|').count(), 4, "bad row: {row}");
        }
    }
}
