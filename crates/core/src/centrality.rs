//! Section IV-F and Figure 5: centrality vs global reach.
//!
//! The paper's claim: "how strongly a user is embedded in the Twitter
//! verified user network is highly predictive of their reach in the
//! generic Twittersphere" — PageRank and betweenness inside the sub-graph
//! correlate with global follower counts and list memberships, with GAM
//! regression splines drawn over log-log scatter plots.

use crate::dataset::Dataset;
use rand::Rng;
use serde::Serialize;
use vnet_algos::betweenness::betweenness_sampled;
use vnet_algos::pagerank::{pagerank, PageRankConfig};
use vnet_ctx::AnalysisCtx;
use vnet_stats::correlation::{pearson, spearman};
use vnet_stats::spline::PenalizedSpline;

/// One point of a fitted spline curve with its confidence band
/// (log10 space, like the paper's axes).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CurvePoint {
    /// log10(x).
    pub x: f64,
    /// Fitted log10(y).
    pub fit: f64,
    /// Lower 95% bound.
    pub lo: f64,
    /// Upper 95% bound.
    pub hi: f64,
}

/// One Figure 5 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    /// Panel id ("a".."f").
    pub id: String,
    /// X-axis metric name.
    pub x_metric: String,
    /// Y-axis metric name.
    pub y_metric: String,
    /// Pearson correlation of log10 values.
    pub pearson_log: f64,
    /// Spearman rank correlation (raw values).
    pub spearman: f64,
    /// Points used (zeros on either axis are excluded, as on any log plot).
    pub n: usize,
    /// The regression spline with 95% band, on a 40-point grid.
    pub spline: Vec<CurvePoint>,
}

/// Figure 5: all six panels.
#[derive(Debug, Clone, Serialize)]
pub struct CentralityReport {
    /// Panels (a)–(f).
    pub panels: Vec<Panel>,
    /// Pivots used for the betweenness estimate.
    pub betweenness_pivots: usize,
    /// PageRank iterations to convergence.
    pub pagerank_iterations: usize,
}

/// Build Figure 5. `pivots` controls the betweenness sample; both solvers
/// fan out over `ctx`'s pool (the report is bit-identical at any thread
/// count — see `vnet-par`). Hot-loop work counters (`algo.pagerank.*`,
/// `algo.betweenness.*`, `par.*`) and per-solver spans are recorded
/// through `ctx`.
pub fn centrality_analysis<R: Rng + ?Sized>(
    dataset: &Dataset,
    pivots: usize,
    rng: &mut R,
    ctx: &AnalysisCtx,
) -> CentralityReport {
    let g = &dataset.graph;
    let pr = {
        let _span = ctx.span("analysis.centrality.pagerank");
        pagerank(g, PageRankConfig::default(), ctx)
    };
    let bc = {
        let _span = ctx.span("analysis.centrality.betweenness");
        betweenness_sampled(g, pivots.min(g.node_count()), rng, ctx)
    };

    let followers = dataset.followers();
    let listed = dataset.listed();
    let statuses = dataset.statuses();
    let pr_scores: Vec<f64> = pr.scores.clone();

    let panels = vec![
        make_panel("a", "betweenness", &bc, "listed", &listed),
        make_panel("b", "betweenness", &bc, "followers", &followers),
        make_panel("c", "pagerank", &pr_scores, "listed", &listed),
        make_panel("d", "pagerank", &pr_scores, "followers", &followers),
        make_panel("e", "statuses", &statuses, "followers", &followers),
        make_panel("f", "listed", &listed, "followers", &followers),
    ];

    CentralityReport {
        panels,
        betweenness_pivots: pivots.min(g.node_count()),
        pagerank_iterations: pr.iterations,
    }
}

fn make_panel(id: &str, x_name: &str, x: &[f64], y_name: &str, y: &[f64]) -> Panel {
    // Log-log scatter: keep strictly positive pairs.
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|&(&a, &b)| a > 0.0 && b > 0.0)
        .map(|(&a, &b)| (a.log10(), b.log10()))
        .collect();
    let lx: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
    let ly: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
    let pearson_log = pearson(&lx, &ly).unwrap_or(0.0);
    let spearman_raw = spearman(x, y).unwrap_or(0.0);

    let spline = if lx.len() >= 40 {
        PenalizedSpline::fit(&lx, &ly, 10, 1.0)
            .map(|s| {
                let lo = lx.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = lx.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                s.curve(lo, hi, 40, 0.95)
                    .into_iter()
                    .map(|p| CurvePoint { x: p.x, fit: p.fit, lo: p.lo, hi: p.hi })
                    .collect()
            })
            .unwrap_or_default()
    } else {
        Vec::new()
    };

    Panel {
        id: id.to_string(),
        x_metric: x_name.to_string(),
        y_metric: y_name.to_string(),
        pearson_log,
        spearman: spearman_raw,
        n: pairs.len(),
        spline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthesisConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure5_correlations_match_paper_directions() {
        let ctx = AnalysisCtx::with_threads(2);
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let mut rng = StdRng::seed_from_u64(11);
        let r = centrality_analysis(&ds, 120, &mut rng, &ctx);
        assert_eq!(r.panels.len(), 6);
        let by_id = |id: &str| r.panels.iter().find(|p| p.id == id).unwrap();

        // Paper: PageRank vs followers/lists "especially strong".
        assert!(by_id("c").pearson_log > 0.3, "c: {}", by_id("c").pearson_log);
        assert!(by_id("d").pearson_log > 0.3, "d: {}", by_id("d").pearson_log);
        // Followers vs lists: almost exclusively upward (paper §IV-F).
        assert!(by_id("f").pearson_log > 0.5, "f: {}", by_id("f").pearson_log);
        // Followers vs statuses: positive but weaker.
        assert!(by_id("e").pearson_log > 0.05, "e: {}", by_id("e").pearson_log);
        // Betweenness panels: positive ("lukewarm at first" per the paper).
        assert!(by_id("a").pearson_log > 0.05, "a: {}", by_id("a").pearson_log);
        assert!(by_id("b").pearson_log > 0.05, "b: {}", by_id("b").pearson_log);

        // Splines exist and their bands bracket the fit.
        for p in &r.panels {
            assert!(!p.spline.is_empty(), "panel {} has no spline", p.id);
            for pt in &p.spline {
                assert!(pt.lo <= pt.fit && pt.fit <= pt.hi);
            }
        }
    }

    #[test]
    fn spline_trends_upward_for_strong_panels() {
        let ctx = AnalysisCtx::with_threads(2);
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let mut rng = StdRng::seed_from_u64(13);
        let r = centrality_analysis(&ds, 80, &mut rng, &ctx);
        let f = r.panels.iter().find(|p| p.id == "f").unwrap();
        // Paper: followers trend "almost exclusively upwards" with list
        // memberships — compare spline ends.
        let first = f.spline.first().unwrap().fit;
        let last = f.spline.last().unwrap().fit;
        assert!(last > first, "panel f spline not increasing: {first} -> {last}");
    }
}
