#![warn(missing_docs)]

//! # verified-net
//!
//! A production-quality Rust reproduction of *"Elites Tweet? Characterizing
//! the Twitter Verified User Network"* (Paul, Khattar, Kumaraguru, Gupta,
//! Chopra — ICDE 2019).
//!
//! The paper crawls the sub-graph of Twitter induced by verified users
//! (231,246 English profiles, 79.2M follow edges) plus a year of Firehose
//! activity data, and characterizes it: power-law out-degree and Laplacian
//! eigenvalue distributions, elevated reciprocity, slight dissortativity,
//! 2.74 mean degrees of separation, celebrity-cored attracting components,
//! journalism-dominated bios, and a stationary activity series with two
//! change-points (Christmas, early April).
//!
//! Because the dataset and its acquisition channels are gone, this crate
//! analyzes a **calibrated synthetic substitute** (see `vnet-synth` and
//! `vnet-twittersim`) acquired through a faithful re-implementation of the
//! paper's crawl methodology; every measurement instrument (power-law MLE,
//! Vuong tests, portmanteau tests, ADF, PELT, GAM-style splines, PageRank,
//! Brandes betweenness, Lanczos spectra) is built from scratch in this
//! workspace.
//!
//! ## Quick start
//!
//! ```no_run
//! use verified_net::{AnalysisCtx, AnalysisOptions, Dataset};
//!
//! // One context carries the thread pool and observability handle.
//! let ctx = AnalysisCtx::with_threads(4);
//! // Synthesize, crawl and package a 1:10-scale dataset.
//! let dataset = Dataset::build(&verified_net::SynthesisConfig::default(), &ctx);
//! // Run the full Section IV + V battery.
//! let opts = AnalysisOptions::builder().threads(4).build();
//! let report = verified_net::run_analysis(&dataset, &opts, &ctx);
//! println!("{}", serde_json::to_string_pretty(&report).unwrap());
//! ```
//!
//! Single sections (what the `vnet-serve` analysis service computes and
//! caches) run through [`run_analysis_section`]; the pre-0.2.0
//! `run_full_analysis`/`*_observed` entrypoints live on as deprecated
//! shims in [`compat`] — see `docs/API.md` for the migration table.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §III dataset | [`dataset`] |
//! | §IV-A basic analysis | [`basic`] |
//! | §IV-B degree & eigenvalue power laws | [`degrees`], [`eigen`] |
//! | §IV-C reciprocity | [`recip`] |
//! | §IV-D degrees of separation | [`separation`] |
//! | §IV-E bios | [`bios`] |
//! | §IV-F centrality | [`centrality`] |
//! | §V activity | [`activity`] |
//! | §VI future work (network fingerprint) | [`fingerprint`] |
//! | §IV-C deferred conjecture (elite core) | [`elite_core`] |
//! | index-term "User Categorization" | [`categories`] |

pub mod activity;
pub mod basic;
pub mod bios;
pub mod categories;
pub mod centrality;
pub mod dataset;
pub mod degrees;
pub mod deviations;
pub mod eigen;
pub mod elite_core;
pub mod error;
pub mod experiments;
pub mod fingerprint;
pub mod io;
pub mod markdown;
pub mod recip;
pub mod report;
pub mod section;
pub mod separation;

pub use dataset::{Dataset, DatasetProvenance, SynthesisConfig};
pub use error::{Result, VnetError};
pub use experiments::{Experiment, EXPERIMENTS};
pub use fingerprint::{classify_fingerprint, NetworkFingerprint};
pub use io::{load_dataset, save_dataset};
pub use markdown::render_markdown;
pub use report::{run_analysis, AnalysisOptions, AnalysisOptionsBuilder, AnalysisReport};
pub use section::{run_analysis_section, Section, SectionReport};
pub use vnet_ctx::AnalysisCtx;
