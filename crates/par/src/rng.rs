//! Seeded per-task RNG stream splitting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNG streams from a `(seed, task)`
/// pair.
///
/// A parallel randomized stage must not thread one sequential generator
/// through its tasks: the values a task would draw would then depend on
/// how many draws earlier tasks made, and any change to the decomposition
/// (or any attempt to run tasks concurrently) would reshuffle every
/// stream. Instead each task calls [`StreamRng::split`] with the stage's
/// master seed and its own task index and gets a private generator whose
/// stream is a pure function of that pair.
///
/// The split is a SplitMix64-style avalanche over both words with a
/// domain-separation constant, so `split(s, 0)` is unrelated to
/// `StdRng::seed_from_u64(s)` — a stage can safely use the same master
/// seed for its sequential prologue (e.g. pivot sampling) and its split
/// task streams.
pub struct StreamRng;

impl StreamRng {
    /// The generator for task `task_idx` of the stream family `seed`.
    pub fn split(seed: u64, task_idx: u64) -> StdRng {
        StdRng::seed_from_u64(mix(seed, task_idx))
    }
}

/// Avalanche mix of two words (SplitMix64 finalizer over a golden-ratio
/// combination). Distinct `(seed, task)` pairs collide with probability
/// ~2⁻⁶⁴ — negligible against the ≤ 10⁵ streams any stage splits.
fn mix(seed: u64, task_idx: u64) -> u64 {
    let mut z = seed
        ^ 0x9E37_79B9_7F4A_7C15u64
            .wrapping_mul(task_idx.wrapping_add(0x243F_6A88_85A3_08D3));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    #[test]
    fn same_pair_same_stream() {
        let mut a = StreamRng::split(42, 7);
        let mut b = StreamRng::split(42, 7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_tasks_different_streams() {
        let mut a = StreamRng::split(42, 0);
        let mut b = StreamRng::split(42, 1);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StreamRng::split(1, 3);
        let mut b = StreamRng::split(2, 3);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_is_domain_separated_from_direct_seeding() {
        use rand::SeedableRng;
        let mut direct = rand::rngs::StdRng::seed_from_u64(42);
        let mut split = StreamRng::split(42, 0);
        assert_ne!(direct.next_u64(), split.next_u64());
    }

    #[test]
    fn stream_values_statistically_reasonable() {
        // 1000 tasks, first draw each: mean of uniform [0,1) near 0.5.
        let mean: f64 = (0..1000)
            .map(|t| StreamRng::split(0xA11CE, t).random::<f64>())
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
