//! The deterministic fork-join pool.

use std::ops::Range;

/// Work counters from one fork-join call, for observability manifests.
///
/// Every field is a pure function of the task decomposition (and therefore
/// deterministic): the pool's schedule is static, so there is nothing
/// timing-dependent to count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Tasks (chunks) the call was decomposed into.
    pub tasks: u64,
    /// Tasks executed on their statically assigned worker. The pool never
    /// steals, so this always equals [`tasks`](Self::tasks) — the counter
    /// exists as a pinned invariant: a future dynamic scheduler would make
    /// the two diverge in every recorded manifest.
    pub steal_free_chunks: u64,
    /// Workers that actually ran (`min(threads, tasks)`).
    pub workers: u64,
}

impl ParStats {
    fn for_schedule(tasks: usize, workers: usize) -> Self {
        Self {
            tasks: tasks as u64,
            steal_free_chunks: tasks as u64,
            workers: workers as u64,
        }
    }

    /// Accumulate another call's counters into this one (workers is kept
    /// at the maximum seen).
    pub fn merge(&mut self, other: ParStats) {
        self.tasks += other.tasks;
        self.steal_free_chunks += other.steal_free_chunks;
        self.workers = self.workers.max(other.workers);
    }
}

/// A deterministic fork-join pool over [`std::thread::scope`].
///
/// The pool owns no threads between calls — each `map_reduce` /
/// `for_each_chunk_mut` call spawns scoped workers and joins them before
/// returning, so borrowing the caller's data requires no `'static` bounds
/// and a `ParPool` is nothing but a thread-count policy. Construction is
/// free; share it by value or reference as convenient.
///
/// See the crate docs for the determinism contract all entry points obey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParPool {
    threads: usize,
}

impl ParPool {
    /// A pool that uses up to `threads` OS threads per call (clamped to at
    /// least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// The single-threaded pool: every call runs inline on the caller's
    /// thread, through the *same* task decomposition and fold order as the
    /// threaded paths.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The configured thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `task_idx ∈ 0..tasks` through `map` on the pool's workers, then
    /// fold the results **in task order** into `init`.
    ///
    /// The fold runs on the caller's thread after all workers join, so it
    /// needs neither `Send` nor `Sync`; only the task results cross
    /// threads.
    pub fn map_reduce<T, A, M, F>(&self, tasks: usize, map: M, init: A, mut fold: F) -> (A, ParStats)
    where
        T: Send,
        M: Fn(usize) -> T + Sync,
        F: FnMut(A, T) -> A,
    {
        let workers = self.threads.min(tasks).max(1);
        let stats = ParStats::for_schedule(tasks, workers);
        if workers == 1 {
            let mut acc = init;
            for i in 0..tasks {
                acc = fold(acc, map(i));
            }
            return (acc, stats);
        }
        let map = &map;
        let mut slots: Vec<Option<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        // Static round-robin schedule: worker w owns tasks
                        // w, w+workers, w+2·workers, …
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut i = w;
                        while i < tasks {
                            out.push((i, map(i)));
                            i += workers;
                        }
                        out
                    })
                })
                .collect();
            let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
            for h in handles {
                for (i, v) in h.join().expect("vnet-par worker panicked") {
                    slots[i] = Some(v);
                }
            }
            slots
        });
        let mut acc = init;
        for slot in &mut slots {
            acc = fold(acc, slot.take().expect("every task produces a value"));
        }
        (acc, stats)
    }

    /// [`map_reduce`](Self::map_reduce) over the index range `0..len`
    /// split into chunks of `chunk_size` (the last chunk may be short).
    ///
    /// The chunk decomposition depends only on `len` and `chunk_size` —
    /// never on the thread count — which is what makes non-associative
    /// (floating-point) reductions reproducible across pools.
    pub fn map_reduce_chunks<T, A, M, F>(
        &self,
        len: usize,
        chunk_size: usize,
        map: M,
        init: A,
        fold: F,
    ) -> (A, ParStats)
    where
        T: Send,
        M: Fn(usize, Range<usize>) -> T + Sync,
        F: FnMut(A, T) -> A,
    {
        let chunk_size = chunk_size.max(1);
        let tasks = len.div_ceil(chunk_size);
        self.map_reduce(
            tasks,
            |task| {
                let start = task * chunk_size;
                let end = (start + chunk_size).min(len);
                map(task, start..end)
            },
            init,
            fold,
        )
    }

    /// Run `f(task_idx, offset, chunk)` over disjoint `chunk_size`-sized
    /// shards of `out` on the pool's workers.
    ///
    /// Each task owns its shard exclusively (via [`slice::chunks_mut`]),
    /// so there is no reduction step and no ordering concern: the write
    /// pattern is identical at any thread count by construction. `offset`
    /// is the index of the shard's first element within `out`.
    pub fn for_each_chunk_mut<T, F>(&self, out: &mut [T], chunk_size: usize, f: F) -> ParStats
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let tasks = out.len().div_ceil(chunk_size);
        let workers = self.threads.min(tasks).max(1);
        let stats = ParStats::for_schedule(tasks, workers);
        if workers == 1 {
            for (i, chunk) in out.chunks_mut(chunk_size).enumerate() {
                f(i, i * chunk_size, chunk);
            }
            return stats;
        }
        let mut assignments: Vec<Vec<(usize, &mut [T])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in out.chunks_mut(chunk_size).enumerate() {
            assignments[i % workers].push((i, chunk));
        }
        let f = &f;
        std::thread::scope(|scope| {
            for worker in assignments {
                scope.spawn(move || {
                    for (i, chunk) in worker {
                        f(i, i * chunk_size, chunk);
                    }
                });
            }
        });
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamRng;
    use rand::Rng;

    /// The thread counts every determinism test sweeps (mirrors the
    /// integration battery).
    const SWEEP: [usize; 4] = [1, 2, 4, 7];

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(ParPool::new(0).threads(), 1);
        assert_eq!(ParPool::serial().threads(), 1);
        assert_eq!(ParPool::new(8).threads(), 8);
    }

    #[test]
    fn map_reduce_visits_every_task_once() {
        for &t in &SWEEP {
            let (seen, stats) = ParPool::new(t).map_reduce(
                37,
                |i| vec![i],
                Vec::new(),
                |mut acc: Vec<usize>, v| {
                    acc.extend(v);
                    acc
                },
            );
            assert_eq!(seen, (0..37).collect::<Vec<_>>(), "threads={t}");
            assert_eq!(stats.tasks, 37);
            assert_eq!(stats.steal_free_chunks, 37);
            assert_eq!(stats.workers as usize, t.min(37));
        }
    }

    #[test]
    fn float_reduction_bit_identical_across_thread_counts() {
        // Non-associative fold: per-task random f64s summed in task order.
        let run = |threads: usize| {
            ParPool::new(threads)
                .map_reduce(
                    101,
                    |i| StreamRng::split(99, i as u64).random::<f64>() - 0.5,
                    0.0f64,
                    |acc, x| acc + x,
                )
                .0
        };
        let reference = run(1);
        for &t in &SWEEP[1..] {
            assert_eq!(reference.to_bits(), run(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn chunk_decomposition_independent_of_threads() {
        // Chunk ranges must depend on (len, chunk_size) only.
        for &t in &SWEEP {
            let (ranges, stats) = ParPool::new(t).map_reduce_chunks(
                10,
                4,
                |task, range| (task, range),
                Vec::new(),
                |mut acc: Vec<_>, r| {
                    acc.push(r);
                    acc
                },
            );
            assert_eq!(ranges, vec![(0, 0..4), (1, 4..8), (2, 8..10)], "threads={t}");
            assert_eq!(stats.tasks, 3);
        }
    }

    #[test]
    fn for_each_chunk_mut_covers_disjoint_shards() {
        for &t in &SWEEP {
            let mut out = vec![0usize; 23];
            let stats = ParPool::new(t).for_each_chunk_mut(&mut out, 5, |task, offset, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = 1000 * task + offset + k;
                }
            });
            let want: Vec<usize> = (0..23).map(|i| 1000 * (i / 5) + i).collect();
            assert_eq!(out, want, "threads={t}");
            assert_eq!(stats.tasks, 5);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let (acc, stats) =
            ParPool::new(4).map_reduce(0, |_| 1u64, 7u64, |a, b| a + b);
        assert_eq!(acc, 7);
        assert_eq!(stats.tasks, 0);
        let stats = ParPool::new(4).for_each_chunk_mut(&mut [] as &mut [u8], 8, |_, _, _| {});
        assert_eq!(stats.tasks, 0);
        let (v, _) = ParPool::new(4).map_reduce_chunks(
            3,
            0, // clamped to 1
            |_, r| r.len(),
            0usize,
            |a, b| a + b,
        );
        assert_eq!(v, 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut total = ParStats::default();
        total.merge(ParStats::for_schedule(5, 2));
        total.merge(ParStats::for_schedule(7, 4));
        assert_eq!(total.tasks, 12);
        assert_eq!(total.steal_free_chunks, 12);
        assert_eq!(total.workers, 4);
    }
}
