#![warn(missing_docs)]

//! # vnet-par — deterministic fork-join parallelism
//!
//! A zero-external-dependency parallel execution layer on
//! [`std::thread::scope`] for the `verified-net` workspace. The heavy
//! stages of the paper reproduction — the semiparametric bootstrap
//! goodness-of-fit test, pivot-sampled Brandes betweenness, BFS distance
//! sampling, and the Lanczos / PageRank matrix-vector inner loops — all
//! run through this crate, and all obey one contract:
//!
//! > **The result is a function of the problem and the seed, never of the
//! > thread count.** `threads = 1` and `threads = 64` produce bit-identical
//! > output.
//!
//! Three design rules deliver that contract (see `docs/DETERMINISM.md` in
//! the repository root for the full rationale):
//!
//! 1. **Static chunking.** Work is decomposed into tasks by a *fixed*
//!    chunk size chosen per call site — never by dividing the input across
//!    however many threads happen to exist. The task list is therefore
//!    identical at any thread count; threads only change which worker
//!    executes a task.
//! 2. **Ordered reduction.** Task results are folded strictly in task
//!    order (task 0, then task 1, …), regardless of completion order.
//!    Floating-point addition is not associative, so an
//!    ordered fold is the only way `f64` accumulations can match across
//!    schedules.
//! 3. **RNG stream splitting.** Randomized tasks never share a sequential
//!    RNG. Each task derives its own generator from
//!    [`StreamRng::split`]`(seed, task_idx)` — a SplitMix64-style hash of
//!    the master seed and the task index — so the stream a task consumes
//!    is independent of how many tasks ran before it on the same thread.
//!
//! The scheduler is *steal-free*: task `i` is statically assigned to
//! worker `i % workers` and no rebalancing ever occurs. [`ParStats`]
//! reports `steal_free_chunks == tasks` as a pinned invariant — if a
//! future dynamic scheduler is introduced, the divergence will show up in
//! every run manifest that records these counters.
//!
//! ## Example
//!
//! ```
//! use vnet_par::{ParPool, StreamRng};
//! use rand::Rng;
//!
//! // Ordered map-reduce: same sum at any thread count.
//! let pool = ParPool::new(4);
//! let (sum, stats) = pool.map_reduce(
//!     100,
//!     |task| {
//!         let mut rng = StreamRng::split(0x5EED, task as u64);
//!         rng.random::<f64>()
//!     },
//!     0.0,
//!     |acc, x| acc + x,
//! );
//! let (serial_sum, _) = ParPool::serial().map_reduce(
//!     100,
//!     |task| {
//!         let mut rng = StreamRng::split(0x5EED, task as u64);
//!         rng.random::<f64>()
//!     },
//!     0.0,
//!     |acc, x| acc + x,
//! );
//! assert_eq!(sum.to_bits(), serial_sum.to_bits());
//! assert_eq!(stats.tasks, 100);
//! ```

mod pool;
mod rng;

pub use pool::{ParPool, ParStats};
pub use rng::StreamRng;
