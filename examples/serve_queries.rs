//! The analysis service end-to-end in one process: start a `vnet-serve`
//! server on a loopback port, register a synthesized snapshot, and walk
//! the wire protocol — status, a cold `analyze`, the byte-identical
//! cached repeat, a churn-registered snapshot with `as_of` time travel
//! and a structural regime shock, and a graceful shutdown — printing
//! each exchange.
//!
//! ```text
//! cargo run --release -p vnet-examples --bin serve_queries
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_serve::{Server, ServerConfig};

fn main() {
    println!("== vnet-serve demo ==\n");

    // 1. Start the service (port 0 = pick a free port) and register a
    //    snapshot directly — a remote client would use the `register`
    //    command with a saved bundle directory instead.
    let handle = Server::start(ServerConfig::default()).expect("bind loopback server");
    println!("server listening on {}", handle.local_addr());
    println!("synthesizing the small dataset ...");
    let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
    let fp = handle.register_dataset("demo", ds);
    println!("registered snapshot 'demo' (fingerprint {fp:016x})\n");

    // 2. Talk the line-delimited JSON protocol over TCP.
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut req = |line: &str| -> String {
        println!(">> {line}");
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let reply = reply.trim_end().to_string();
        let shown = if reply.len() > 160 { format!("{}…", &reply[..160]) } else { reply.clone() };
        println!("<< {shown}\n");
        reply
    };

    req(r#"{"v":1,"cmd":"status"}"#);

    let analyze =
        r#"{"v":1,"cmd":"analyze","snapshot":"demo","sections":["basic","reciprocity"],"options":{"seed":42}}"#;
    let cold = req(analyze);
    let warm = req(analyze);
    println!(
        "cache check: cold and repeat replies byte-identical = {}\n",
        cold == warm
    );

    // 3. Time travel: register a second snapshot with a churn timeline —
    //    21 deterministic churn days with a 4x churn shock on day 10 —
    //    then analyze the graph as it stood on specific days and read the
    //    structural shifts the PELT detector found around the shock.
    println!("registering 'evolving' with a 21-day churn timeline (shock on day 10) ...");
    req(r#"{"v":1,"cmd":"register","name":"evolving","scale":"small","churn_days":21,"churn_seed":11,"churn_shock_day":10}"#);
    for day in [1u32, 10, 21] {
        let reply = req(&format!(
            r#"{{"v":1,"cmd":"analyze","snapshot":"evolving","sections":["basic"],"as_of":{day}}}"#
        ));
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        println!(
            "day {day}: dataset fingerprint {:016x}\n",
            v["dataset_fingerprint"].as_u64().unwrap_or(0)
        );
    }
    let status = req(r#"{"v":1,"cmd":"status","snapshot":"evolving"}"#);
    let v: serde_json::Value = serde_json::from_str(&status).unwrap();
    println!(
        "structural shifts: {}\n",
        serde_json::to_string(&v["shard"]["temporal"]["shifts"]).unwrap_or_default()
    );

    let metrics = req(r#"{"v":1,"cmd":"metrics"}"#);
    let v: serde_json::Value = serde_json::from_str(&metrics).unwrap();
    println!(
        "cache counters: hits {} / misses {} / entries {} | as_of: hits {} / materializations {}\n",
        v["counters"]["cache.hits"].as_u64().unwrap_or(0),
        v["counters"]["cache.misses"].as_u64().unwrap_or(0),
        v["counters"]["cache.entries"].as_u64().unwrap_or(0),
        v["counters"]["serve.asof_cache_hits"].as_u64().unwrap_or(0),
        v["counters"]["serve.asof_materializations"].as_u64().unwrap_or(0),
    );

    // 3. Graceful shutdown: drains in-flight work, then stops accepting.
    req(r#"{"v":1,"cmd":"shutdown"}"#);
    handle.join();
    println!("server drained and stopped.");
}
