//! Shared nothing; examples are standalone binaries.
