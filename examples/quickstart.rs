//! Quickstart: synthesize a verified-user network, run the paper's full
//! analysis battery, and print the headline numbers next to the paper's.
//!
//! ```text
//! cargo run --release -p vnet-examples --bin quickstart
//! ```

use verified_net::{run_analysis, AnalysisCtx, AnalysisOptions, Dataset, SynthesisConfig};

fn main() {
    println!("verified-net quickstart — 'Elites Tweet?' (ICDE 2019) reproduction\n");

    // One context carries the fork-join pool and observability registry
    // through synthesis and analysis alike.
    let ctx = AnalysisCtx::with_threads(4);

    // 1. Synthesize the dataset: generate a society, crawl it through the
    //    simulated REST API exactly as the paper's Section III describes,
    //    and attach a year of Firehose activity.
    let config = SynthesisConfig::default(); // 1:10 paper scale (~23k users)
    println!("synthesizing & crawling a {}-user society ...", config.society.net.nodes);
    let dataset = Dataset::build(&config, &ctx);
    let s = dataset.summary();
    println!(
        "  crawled {} English verified users, {} internal follow edges\n",
        s.users, s.edges
    );

    // 2. Run every analysis of Sections IV and V.
    println!("running the Section IV + V battery ...\n");
    let report = run_analysis(&dataset, &AnalysisOptions::quick(), &ctx);

    // 3. Headlines, paper vs measured.
    println!("{:<38} {:>16} {:>16}", "statistic", "paper", "measured");
    println!("{}", "-".repeat(72));
    row("density", "0.00148", format!("{:.5}", report.dataset.density));
    row(
        "isolated users (share)",
        "2.61%",
        format!("{:.2}%", 100.0 * report.basic.isolated as f64 / report.basic.users as f64),
    );
    row("giant SCC share", "97.24%", format!("{:.2}%", 100.0 * report.basic.giant_scc_fraction));
    row("avg local clustering", "0.1583", format!("{:.4}", report.basic.clustering));
    row("degree assortativity", "-0.04", format!("{:.4}", report.basic.assortativity_out_in));
    row("reciprocity", "33.7%", format!("{:.1}%", 100.0 * report.reciprocity.reciprocity));
    row("mean degrees of separation", "2.74", format!("{:.2}", report.separation.mean));
    row("out-degree power-law alpha", "3.24", format!("{:.2}", report.degrees.alpha));
    row("eigenvalue power-law alpha", "3.18", format!("{:.2}", report.eigen.alpha));
    row("ADF statistic (crit -3.42)", "-3.86", format!("{:.2}", report.activity.adf_statistic));
    row("Ljung-Box max p", "3.81e-38", format!("{:.2e}", report.activity.ljung_box_max_p));
    row("PELT change-points", "2", format!("{}", report.activity.changepoints.len()));
    row("top bio bigram", "Official Twitter", report.bios.top_bigrams[0].ngram.clone());

    println!("\nchange-points found:");
    for cp in &report.activity.changepoints {
        println!("  {} (support {:.0}%)", cp.date, 100.0 * cp.support);
    }
    println!("(paper: 23-25 Dec 2017 and the first week of April 2018)");
}

fn row(name: &str, paper: &str, measured: String) {
    println!("{name:<38} {paper:>16} {measured:>16}");
}
