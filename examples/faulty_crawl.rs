//! Crawling through scheduled failure — the fault-injection harness.
//!
//! Real measurement crawls run for days against an API that goes down,
//! truncates pages, serves stale caches, and re-shuffles the very roster
//! being listed. This example binds a seeded [`FaultPlan`] — an outage, an
//! error burst, page truncation/duplication, stale reads, rate-limit skew,
//! and mid-crawl roster flicker — to the simulated platform, runs the
//! churn-hardened multi-pass crawler through it, and then verifies the
//! headline property of the harness: the degraded crawl converges to a
//! dataset **bit-identical** to the fault-free one, and replaying the same
//! plan seed reproduces the crawl exactly.
//!
//! ```text
//! cargo run --release -p vnet-examples --bin faulty_crawl
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use vnet_obs::Obs;
use vnet_twittersim::{
    CrawlDataset, CrawlOutcome, Crawler, Endpoint, FaultClause, FaultPlan, RateLimitPolicy,
    SimClock, Society, SocietyConfig, TwitterApi,
};

fn run_faulty(society: &Society, plan: &FaultPlan, obs: &Arc<Obs>) -> CrawlDataset {
    let api = TwitterApi::new(society, SimClock::new(), RateLimitPolicy::default(), 0.0)
        .with_obs(obs.clone())
        .with_faults(plan.clone());
    match Crawler::new(&api).with_obs(obs.clone()).crawl_resumable(None) {
        CrawlOutcome::Complete(ds) => ds,
        CrawlOutcome::Degraded { dataset, roster_drift, passes } => {
            println!("  (degraded after {passes} passes, roster drift {roster_drift})");
            dataset
        }
        CrawlOutcome::Aborted { error, .. } => panic!("crawl aborted: {error}"),
    }
}

fn main() {
    println!("faulty crawl — a scheduled outage cannot corrupt the dataset\n");

    let society = Society::generate(&SocietyConfig::small());

    // The hazard schedule, replayable from this single seed.
    let plan = FaultPlan::new(0x5EED)
        .with(FaultClause::Outage { endpoint: Endpoint::FriendsIds, from: 0, until: 600 })
        .with(FaultClause::ErrorBurst {
            endpoint: Endpoint::Any,
            probability: 0.35,
            from: 600,
            until: 1_500,
        })
        .with(FaultClause::TruncatedPages {
            endpoint: Endpoint::Any,
            probability: 0.6,
            from: 0,
            until: 1_800,
        })
        .with(FaultClause::DuplicatedPages {
            endpoint: Endpoint::Any,
            probability: 0.6,
            from: 0,
            until: 1_800,
        })
        .with(FaultClause::StaleProfiles { probability: 0.5, from: 0, until: 2_400 })
        .with(FaultClause::RateLimitSkew { extra_secs: 60, from: 0, until: 3_000 })
        .with(FaultClause::RosterFlicker { probability: 0.15, from: 300, until: 1_200 });
    assert!(plan.is_healing(), "every window closes");
    println!("fault plan (seed {:#x}, heals by t={}s):", plan.seed(), plan.horizon());
    for clause in plan.clauses() {
        println!("  {clause:?}");
    }

    // Ground truth: the same society crawled with nothing in the way.
    let clean_api =
        TwitterApi::new(&society, SimClock::new(), RateLimitPolicy::unlimited(), 0.0);
    let clean = Crawler::new(&clean_api).crawl().expect("fault-free crawl");

    println!("\ncrawling through the plan ...");
    let obs = Arc::new(Obs::new());
    let faulty = run_faulty(&society, &plan, &obs);
    faulty.stats.export_metrics(&obs);

    let t = &faulty.stats.faults;
    println!("\nwhat the crawler survived:");
    println!("  outage failures        {:>6}", t.outage_failures);
    println!("  error-burst failures   {:>6}", t.burst_failures);
    println!("  truncated pages        {:>6}", t.truncated_pages);
    println!("  duplicated ids         {:>6}", t.duplicated_ids);
    println!("  stale profile reads    {:>6}", t.stale_reads);
    println!("  skewed rate limits     {:>6}", t.skewed_waits);
    println!("  flickered roster reads {:>6}", t.flickered_roster_reads);
    println!("  expired cursors        {:>6}", t.expired_cursors);
    println!("  crawl passes           {:>6}", faulty.stats.passes);
    println!("  transient retries      {:>6}", faulty.stats.transient_retries);
    println!("  rate-limit waits       {:>6}", faulty.stats.rate_limit_waits);
    println!(
        "  simulated duration     {:>6}s (~{:.1} simulated days)",
        faulty.stats.simulated_seconds,
        faulty.stats.simulated_seconds as f64 / 86_400.0
    );

    // The same tally, sliced per endpoint — straight from the metrics
    // registry the API and crawler reported into during the crawl.
    println!("\nper-endpoint API traffic (vnet-obs registry):");
    println!(
        "  {:<16} {:>9} {:>9} {:>8}  fault kinds",
        "endpoint", "requests", "ratelim", "faults"
    );
    let counters = obs.metrics().counters();
    for (endpoint, row) in endpoint_table(&counters) {
        let kinds = row
            .fault_kinds
            .iter()
            .map(|(k, n)| format!("{k}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let faults: u64 = row.fault_kinds.iter().map(|&(_, n)| n).sum();
        println!(
            "  {:<16} {:>9} {:>9} {:>8}  {}",
            endpoint, row.requests, row.rate_limited, faults, kinds
        );
    }

    println!("\nconvergence:");
    let same_graph = faulty.graph == clean.graph;
    let same_ids = faulty.platform_ids == clean.platform_ids;
    let same_profiles = faulty.profiles == clean.profiles;
    println!("  graph bit-identical to fault-free crawl     {same_graph}");
    println!("  node-id assignment identical                {same_ids}");
    println!("  profiles identical (stale reads healed)     {same_profiles}");
    assert!(same_graph && same_ids && same_profiles, "conformance violated");

    println!("\nreplay:");
    let obs2 = Arc::new(Obs::new());
    let again = run_faulty(&society, &plan, &obs2);
    again.stats.export_metrics(&obs2);
    let replayed = again.stats == faulty.stats && again.graph == faulty.graph;
    println!("  same seed => identical CrawlStats + graph   {replayed}");
    assert!(replayed, "replay violated");
    let same_counters = obs2.metrics().counters() == counters;
    println!("  same seed => identical metrics registry     {same_counters}");
    assert!(same_counters, "metric replay violated");

    println!(
        "\n{} users / {} edges acquired exactly, despite {} injected faults.",
        faulty.graph.node_count(),
        faulty.graph.edge_count(),
        t.total()
    );
}

#[derive(Default)]
struct EndpointRow {
    requests: u64,
    rate_limited: u64,
    fault_kinds: Vec<(String, u64)>,
}

/// Regroup the flat `api.*{endpoint=...}` counter keys into one row per
/// endpoint. Key format is `name{k1=v1,k2=v2}` with labels sorted, so
/// `endpoint` always precedes `kind`.
fn endpoint_table(counters: &BTreeMap<String, u64>) -> BTreeMap<String, EndpointRow> {
    let mut table: BTreeMap<String, EndpointRow> = BTreeMap::new();
    for (key, &value) in counters {
        let Some((name, labels)) = key.split_once('{') else { continue };
        let labels = labels.trim_end_matches('}');
        let mut endpoint = None;
        let mut kind = None;
        for pair in labels.split(',') {
            match pair.split_once('=') {
                Some(("endpoint", v)) => endpoint = Some(v.to_string()),
                Some(("kind", v)) => kind = Some(v.to_string()),
                _ => {}
            }
        }
        let Some(endpoint) = endpoint else { continue };
        let row = table.entry(endpoint).or_default();
        match name {
            "api.requests" => row.requests = value,
            "api.rate_limited" => row.rate_limited = value,
            "api.faults" => row.fault_kinds.push((kind.unwrap_or_default(), value)),
            _ => {}
        }
    }
    table
}
