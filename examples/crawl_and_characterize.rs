//! The full Section III acquisition pipeline under realistic API
//! constraints, followed by the network characterization — the closest
//! runnable analogue of what the paper's authors actually did in July
//! 2018.
//!
//! Unlike `quickstart` (which crawls with unlimited quota), this example
//! enables the real rate-limit policy (15 `friends/ids` calls per
//! 15-minute window) and a 2% transient-failure rate, then reports how
//! long the crawl *would* have taken in wall-clock time.
//!
//! ```text
//! cargo run --release -p vnet-examples --bin crawl_and_characterize [nodes]
//! ```

use verified_net::{run_analysis, AnalysisCtx, AnalysisOptions, Dataset, SynthesisConfig};
use vnet_twittersim::RateLimitPolicy;

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);

    let mut config = SynthesisConfig::small();
    config.society.net.nodes = nodes;
    // Face the same API the authors did: windowed quotas + flaky calls.
    config.rate_limits = RateLimitPolicy {
        // Generous parallel-credential budget (the paper's crawl of 231k
        // users at 15 calls/window per credential would span weeks; real
        // crawls multiplex credentials).
        friends_ids: 3_000,
        users_lookup: 3_000,
        roster: 100,
        window_secs: 900,
    };
    config.failure_rate = 0.02;

    println!("== Section III: data acquisition ==");
    let ctx = AnalysisCtx::with_threads(4);
    let t = std::time::Instant::now();
    let dataset = Dataset::build(&config, &ctx);
    let st = &dataset.crawl_stats;
    println!("roster harvested:        {:>10} verified ids", st.roster_size);
    println!("profiles hydrated:       {:>10}", st.profiles_fetched);
    println!("English retained:        {:>10} ({:.1}%)", st.english_users,
        100.0 * st.english_users as f64 / st.roster_size.max(1) as f64);
    println!("raw friend links seen:   {:>10}", st.raw_friend_links);
    println!("internal links kept:     {:>10} ({:.1}%)", st.internal_links,
        100.0 * st.internal_links as f64 / st.raw_friend_links.max(1) as f64);
    println!("rate-limit waits:        {:>10}", st.rate_limit_waits);
    println!("transient retries:       {:>10}", st.transient_retries);
    println!(
        "simulated crawl time:    {:>10.1} hours  (ran in {:.2}s of real time)",
        st.simulated_seconds as f64 / 3600.0,
        t.elapsed().as_secs_f64()
    );

    let s = dataset.summary();
    println!("\n== dataset ==");
    println!("users {} | edges {} | density {:.5} | avg out-degree {:.1}",
        s.users, s.edges, s.density, s.mean_out_degree);
    println!("max out-degree {} (@{})  | isolated {}",
        s.max_out_degree, s.max_out_handle, s.isolated);

    println!("\n== Sections IV & V: characterization ==");
    let report = run_analysis(&dataset, &AnalysisOptions::default(), &ctx);

    println!("\n-- §IV-A basic --");
    println!("giant SCC {:.2}% | {} WCCs | {} attracting components",
        100.0 * report.basic.giant_scc_fraction,
        report.basic.weak_components,
        report.basic.attracting_components);
    println!("clustering {:.4} | assortativity {:.4}",
        report.basic.clustering, report.basic.assortativity_out_in);
    println!("celebrity sink cores: {:?}", report.basic.top_sink_handles);

    println!("\n-- §IV-B power laws --");
    println!("out-degree: alpha {:.3}, xmin {}, KS {:.4}, tail n {}",
        report.degrees.alpha, report.degrees.xmin, report.degrees.ks, report.degrees.n_tail);
    for v in &report.degrees.vuong {
        println!("  Vuong vs {:<12} LR {:>9.1}  stat {:>7.2}  p {:.2e}",
            v.alternative, v.lr, v.statistic, v.p_value);
    }
    println!("eigenvalues: alpha {:.3}, xmin {:.2}, KS {:.4} (top {} eigenvalues)",
        report.eigen.alpha, report.eigen.xmin, report.eigen.ks, report.eigen.eigenvalues.len());

    println!("\n-- §IV-C/D --");
    println!("reciprocity {:.1}% ({}x whole-Twitter)",
        100.0 * report.reciprocity.reciprocity, fmt1(report.reciprocity.vs_whole_twitter));
    println!("mean separation {:.2} | effective diameter {:.2} | max seen {}",
        report.separation.mean, report.separation.effective_diameter, report.separation.max_observed);

    println!("\n-- §IV-E bios (Table I excerpt) --");
    for row in report.bios.top_bigrams.iter().take(8) {
        println!("  {:<28} {:>6}", row.ngram, row.occurrences);
    }

    println!("\n-- §IV-F centrality --");
    for p in &report.centrality.panels {
        println!("  panel ({}) {:<12} vs {:<10} pearson(log) {:>6.3}  spearman {:>6.3}",
            p.id, p.y_metric, p.x_metric, p.pearson_log, p.spearman);
    }

    println!("\n-- §IV-C conjecture validated (extension) --");
    let inner = report.elite_core.bands.last().unwrap();
    println!(
        "degeneracy {} | innermost core: {} members, reciprocity {:.1}% (graph-wide {:.1}%), mean followers {:.0}",
        report.elite_core.degeneracy,
        inner.members,
        100.0 * inner.reciprocity,
        100.0 * report.elite_core.overall_reciprocity,
        inner.mean_followers
    );

    println!("\n-- user categorization (extension) --");
    for p in report.categories.profiles.iter().take(5) {
        println!("  {:<14} {:>6} users ({:>4.1}%)", p.category, p.count, 100.0 * p.share);
    }
    println!("  news-adjacent share: {:.1}%", 100.0 * report.categories.news_share);

    println!("\n-- §V activity --");
    println!("Ljung-Box max p {:.2e} | Box-Pierce max p {:.2e}",
        report.activity.ljung_box_max_p, report.activity.box_pierce_max_p);
    println!("ADF {:.2} vs crit {:.2} -> stationary: {}",
        report.activity.adf_statistic, report.activity.adf_crit_5pct, report.activity.stationary);
    for cp in &report.activity.changepoints {
        println!("change-point {} (support {:.0}%)", cp.date, 100.0 * cp.support);
    }

    // Persist the full report for downstream tooling.
    let out = std::env::temp_dir().join("verified_net_report.json");
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("\nfull JSON report written to {}", out.display());
}

fn fmt1(x: f64) -> String {
    format!("{x:.2}")
}
