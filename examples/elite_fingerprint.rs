//! The paper's future-work idea, demonstrated: the structural fingerprint
//! of the verified sub-graph "can be leveraged to discern between a
//! verified and a non-verified user" network (Section VI).
//!
//! This example measures the fingerprint of the calibrated verified model
//! and of three null models (preferential attachment, Erdős–Rényi, and
//! the degree-preserving configuration model), then runs the reference
//! classifier over several seeds and reports its accuracy.
//!
//! ```text
//! cargo run --release -p vnet-examples --bin elite_fingerprint
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use verified_net::{classify_fingerprint, NetworkFingerprint};
use vnet_synth::{
    directed_configuration_model, erdos_renyi_directed, preferential_attachment_directed,
    VerifiedNetConfig, VerifiedNetwork,
};

fn main() {
    println!("network fingerprints — verified model vs null models\n");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>8} {:>7} {:>9}",
        "model", "alpha", "ks", "recip", "assort", "dist", "verified?"
    );
    println!("{}", "-".repeat(72));

    let seeds: Vec<u64> = (0..5).collect();
    let mut correct = 0usize;
    let mut total = 0usize;

    for &seed in &seeds {
        let mut rng = StdRng::seed_from_u64(seed);

        // Positive class: the calibrated verified model.
        let net = VerifiedNetwork::generate(&VerifiedNetConfig::small(), &mut rng);
        let fp = NetworkFingerprint::measure(&net.graph, 80, &mut rng);
        print_row(&format!("verified (seed {seed})"), &fp);
        total += 1;
        if classify_fingerprint(&fp) {
            correct += 1;
        }

        // Null 1: preferential attachment (whole-Twitter-like popularity,
        // constant out-degree, no reciprocity).
        let pa = preferential_attachment_directed(4_000, 25, &mut rng);
        let fp = NetworkFingerprint::measure(&pa, 80, &mut rng);
        print_row(&format!("pref-attach (seed {seed})"), &fp);
        total += 1;
        if !classify_fingerprint(&fp) {
            correct += 1;
        }

        // Null 2: Erdős–Rényi with matched density.
        let er = erdos_renyi_directed(4_000, net.graph.edge_count(), &mut rng);
        let fp = NetworkFingerprint::measure(&er, 80, &mut rng);
        print_row(&format!("erdos-renyi (seed {seed})"), &fp);
        total += 1;
        if !classify_fingerprint(&fp) {
            correct += 1;
        }

        // Null 3 (the hard one): configuration model with the *same degree
        // sequences* as the verified graph — only non-degree structure
        // (reciprocity coupling, triadic closure, sinks) differs.
        let cm = directed_configuration_model(
            &net.graph.out_degrees(),
            &net.graph.in_degrees(),
            &mut rng,
        );
        let fp = NetworkFingerprint::measure(&cm, 80, &mut rng);
        print_row(&format!("config-model (seed {seed})"), &fp);
        total += 1;
        if !classify_fingerprint(&fp) {
            correct += 1;
        }
    }

    println!("{}", "-".repeat(72));
    println!(
        "classifier accuracy: {}/{} ({:.0}%)",
        correct,
        total,
        100.0 * correct as f64 / total as f64
    );
    println!(
        "\nreading the table: the verified model separates from every null on\n\
         reciprocity (the paper's 33.7% needs deliberate mutual-pair coupling)\n\
         and from preferential attachment on the out-degree power law; the\n\
         degree-matched configuration model is caught by reciprocity alone —\n\
         exactly the deviation set the paper's conclusion proposes as a\n\
         fingerprint."
    );
}

fn print_row(name: &str, fp: &NetworkFingerprint) {
    println!(
        "{:<22} {:>7.2} {:>7.3} {:>7.3} {:>8.3} {:>7.2} {:>9}",
        name,
        fp.out_alpha,
        fp.out_ks,
        fp.reciprocity,
        fp.assortativity,
        fp.mean_distance,
        if classify_fingerprint(fp) { "yes" } else { "no" }
    );
}
