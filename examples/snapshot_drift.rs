//! Snapshot-timing robustness — stress-testing the paper's one-shot
//! methodology.
//!
//! The paper crawled the `@verified` roster exactly once (July 18, 2018).
//! Verification churns: accounts gain the badge daily, a few lose it. This
//! example binds a churn timeline to the simulated platform, crawls the
//! same society at several simulated dates, and reports how each headline
//! statistic moves — quantifying how much the published numbers could have
//! depended on *when* the authors pressed go.
//!
//! ```text
//! cargo run --release -p vnet-examples --bin snapshot_drift
//! ```

use vnet_algos::components::strongly_connected_components;
use vnet_algos::reciprocity::reciprocity;
use vnet_powerlaw::{fit_discrete, FitOptions, XminStrategy};
use vnet_twittersim::{
    ChurnConfig, Crawler, RateLimitPolicy, RosterTimeline, SimClock, Society, SocietyConfig,
    TwitterApi,
};

fn main() {
    println!("snapshot drift — crawling the same society on different dates\n");
    let society = Society::generate(&SocietyConfig::small());
    let timeline = RosterTimeline::generate(&society, &ChurnConfig::default());

    println!(
        "{:>6} {:>8} {:>9} {:>8} {:>10} {:>8} {:>8}",
        "day", "roster", "english", "edges", "density", "recip", "SCC%"
    );
    let mut reciprocities = Vec::new();
    for day in [0u64, 60, 120, 180, 240, 300, 365] {
        let clock = SimClock::new();
        clock.advance(day * 86_400);
        let api = TwitterApi::new(&society, clock, RateLimitPolicy::unlimited(), 0.0)
            .with_timeline(timeline.clone());
        let ds = Crawler::new(&api).crawl().expect("crawl");
        let r = reciprocity(&ds.graph);
        let scc = strongly_connected_components(&ds.graph).giant_fraction();
        reciprocities.push(r);
        println!(
            "{:>6} {:>8} {:>9} {:>8} {:>10.5} {:>7.1}% {:>7.1}%",
            day,
            ds.stats.roster_size,
            ds.stats.english_users,
            ds.graph.edge_count(),
            ds.graph.density(),
            100.0 * r,
            100.0 * scc
        );
    }

    let spread = reciprocities.iter().cloned().fold(f64::MIN, f64::max)
        - reciprocities.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\nreciprocity spread across snapshots: {:.1} points (whole-Twitter gap: {:.1} points)",
        100.0 * spread,
        100.0 * (reciprocities.iter().sum::<f64>() / reciprocities.len() as f64 - 0.221)
    );

    // Does the out-degree power law survive every snapshot?
    println!("\npower-law fit per snapshot:");
    for day in [0u32, 180, 365] {
        let members: Vec<u32> = (0..society.user_count() as u32)
            .filter(|&v| {
                timeline.is_verified(v, day) && society.profiles[v as usize].lang == "en"
            })
            .collect();
        let g = vnet_graph::induced_subgraph(&society.network.graph, &members).graph;
        let degrees: Vec<u64> = g.out_degrees().into_iter().filter(|&d| d > 0).collect();
        let fit = fit_discrete(
            &degrees,
            &FitOptions { xmin: XminStrategy::Quantiles(30), min_tail: 25 },
        )
        .expect("fit");
        println!("  day {day:>3}: alpha {:.2}, xmin {}, KS {:.4}", fit.alpha, fit.xmin, fit.ks);
    }
    println!(
        "\nconclusion: the deviations the paper reports (elevated reciprocity,\n\
         power-law out-degree, giant SCC) are robust to snapshot timing; the\n\
         absolute numbers wobble by a few points as prominent accounts enter\n\
         and leave the roster."
    );
}
