//! Section V deep dive: activity time-series forensics.
//!
//! Renders an ASCII calendar heatmap (the paper's Figure 6), runs the
//! portmanteau tests across lag horizons, the ADF test under both
//! deterministic specifications, and the PELT penalty cool-down — and
//! shows *why* deseasonalization matters for the change-point pass by
//! running PELT both ways.
//!
//! ```text
//! cargo run --release -p vnet-examples --bin activity_forensics
//! ```

use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_timeseries::adf::{adf_test, AdfRegression, LagSelection};
use vnet_timeseries::pelt::pelt_consensus;
use vnet_timeseries::portmanteau::{box_pierce, ljung_box};
use vnet_timeseries::seasonal::deseasonalize_weekly;
use vnet_timeseries::CalendarHeatmap;

fn main() {
    let dataset = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
    let series = &dataset.activity;
    let start = dataset.activity_start;
    println!(
        "activity forensics: {} days starting {start} (paper: June 2017 - May 2018)\n",
        series.len()
    );

    // --- Figure 6: calendar heatmap (ASCII) ---------------------------
    let hm = CalendarHeatmap::new(start, series);
    let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let weeks = hm.cells.last().map(|c| c.week as usize + 1).unwrap_or(0);
    println!("calendar heatmap (rows Mon..Sun, one column per week):");
    for weekday in 0..7u8 {
        let mut row = String::with_capacity(weeks);
        for week in 0..weeks as u32 {
            let cell = hm.cells.iter().find(|c| c.week == week && c.weekday == weekday);
            row.push(match cell {
                Some(c) => {
                    let t = ((c.value - lo) / (hi - lo)).clamp(0.0, 1.0);
                    shades[(t * 9.0).round() as usize]
                }
                None => ' ',
            });
        }
        let day = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][weekday as usize];
        println!("  {day} |{row}|");
    }
    let means = hm.weekday_means();
    println!(
        "\nweekday means: Mon..Sun = {:?}",
        means.iter().map(|m| (m / means[0] * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!("(the Sunday dip the paper observes is the light bottom row)\n");

    // --- Portmanteau tests across horizons -----------------------------
    println!("portmanteau tests (null: no autocorrelation):");
    println!("{:>6} {:>16} {:>16}", "lags", "Ljung-Box p", "Box-Pierce p");
    for h in [1usize, 7, 14, 30, 90, 185] {
        if h + 2 >= series.len() {
            continue;
        }
        let lb = ljung_box(series, h).unwrap();
        let bp = box_pierce(series, h).unwrap();
        println!("{h:>6} {:>16.3e} {:>16.3e}", lb.p_value, bp.p_value);
    }
    println!("(paper max p: 3.81e-38 LB / 7.57e-38 BP at lags up to 185)\n");

    // --- ADF under both specifications ---------------------------------
    for (label, reg) in [
        ("constant", AdfRegression::Constant),
        ("constant + trend (paper)", AdfRegression::ConstantTrend),
    ] {
        let r = adf_test(series, reg, LagSelection::Aic(14)).unwrap();
        println!(
            "ADF [{label}]: stat {:.3} | crit 5% {:.3} | lags {} (AIC) -> {}",
            r.statistic,
            r.crit_5pct,
            r.lags,
            if r.is_stationary_5pct() { "STATIONARY" } else { "unit root not rejected" }
        );
    }
    println!("(paper: -3.86 vs -3.42 with constant + trend)\n");

    // --- PELT: raw vs deseasonalized ------------------------------------
    let n = series.len() as f64;
    let sweep = |s: &[f64]| pelt_consensus(s, 40.0 * n.ln(), 2.5 * n.ln(), 12, 6, 0.5).unwrap();

    println!("PELT penalty cool-down (12 runs, support >= 50%):");
    let raw = sweep(series);
    println!("  on the raw series:          {} candidate(s)", raw.len());
    for (i, sup) in &raw {
        println!("    {} (support {:.0}%)", start.plus_days(*i as i64), 100.0 * sup);
    }
    let deseason = deseasonalize_weekly(series).unwrap();
    let des = sweep(&deseason);
    println!("  weekly-deseasonalized:      {} candidate(s)", des.len());
    for (i, sup) in &des {
        println!("    {} (support {:.0}%)", start.plus_days(*i as i64), 100.0 * sup);
    }
    println!(
        "\n(paper: exactly two — 23-25 Dec 2017 and the first week of April 2018.\n\
         The weekly cycle inflates PELT's per-segment variance on the raw\n\
         series, which is why the pipeline deseasonalizes first.)"
    );
}
