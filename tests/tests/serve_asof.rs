//! Loopback battery for the v1 wire envelope and the time-travel
//! (`as_of`) serve path: envelope goldens, strict unknown-key rejection,
//! the legacy deprecation note's exact bytes, end-to-end `as_of` replies
//! checked against an out-of-process churn oracle (zero divergence over
//! a mini-soak), the delta-aware cache's `serve.asof_cache_hits`
//! accounting, and the canonicalized-cache-key regression (key order,
//! whitespace, and envelope generation never cause a spurious miss).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_serve::{Server, ServerConfig, DEPRECATION_NOTE};
use vnet_synth::{ChurnConfig, ChurnStream};

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet()))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client { reader: BufReader::new(stream.try_clone().expect("clone stream")), writer: stream }
    }

    fn req(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        assert!(reply.ends_with('\n'), "reply not line-terminated: {reply:?}");
        reply.trim_end().to_string()
    }
}

fn start() -> vnet_serve::ServerHandle {
    Server::start(ServerConfig::default()).expect("bind loopback server")
}

fn json(reply: &str) -> serde_json::Value {
    serde_json::from_str(reply).expect("reply parses as JSON")
}

fn counter(metrics_reply: &str, name: &str) -> u64 {
    json(metrics_reply)["counters"][name].as_u64().unwrap_or(0)
}

fn error_code(reply: &str) -> String {
    json(reply)["error"]["code"].as_str().unwrap_or("").to_string()
}

#[test]
fn legacy_replies_carry_the_deprecation_note_and_v1_replies_do_not() {
    let handle = start();
    handle.register_dataset("snap", dataset().clone());
    let mut c = Client::connect(handle.local_addr());

    // Golden bytes: the note lands immediately after the `ok` field.
    let legacy = c.req(r#"{"cmd":"status"}"#);
    let expected_prefix = format!(
        "{{\"ok\":true,\"deprecation\":{}",
        serde_json::to_string(DEPRECATION_NOTE).unwrap()
    );
    assert!(
        legacy.starts_with(&expected_prefix),
        "legacy status reply lost the deprecation note: {legacy}"
    );

    let v1 = c.req(r#"{"v":1,"cmd":"status"}"#);
    assert!(!v1.contains("deprecation"), "v1 reply must not carry the note: {v1}");

    // Stripping the note must recover the exact v1 bytes: the two paths
    // share one handler and differ only by the annotation.
    let stripped = legacy.replacen(
        &format!(",\"deprecation\":{}", serde_json::to_string(DEPRECATION_NOTE).unwrap()),
        "",
        1,
    );
    assert_eq!(stripped, v1, "legacy reply is not the v1 reply plus a note");

    // Error replies from parsed legacy requests are annotated too.
    let err = c.req(r#"{"cmd":"analyze","snapshot":"ghost","sections":["basic"]}"#);
    assert_eq!(error_code(&err), "unknown_snapshot");
    assert!(err.contains("deprecation"), "legacy error reply lost the note: {err}");

    handle.shutdown();
    handle.join();
}

#[test]
fn v1_rejects_unknown_keys_and_versions_with_invalid_input() {
    let handle = start();
    handle.register_dataset("snap", dataset().clone());
    let mut c = Client::connect(handle.local_addr());

    // Misspelled option under v1: structured invalid_input, not a silent
    // fall-back to the default knob.
    let reply = c.req(
        r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["basic"],"options":{"boostrap_reps":4}}"#,
    );
    assert_eq!(error_code(&reply), "invalid_input", "reply: {reply}");
    assert!(reply.contains("boostrap_reps"), "message must name the bad key: {reply}");

    // Unknown top-level key.
    let reply = c.req(r#"{"v":1,"cmd":"status","snapshit":"snap"}"#);
    assert_eq!(error_code(&reply), "invalid_input", "reply: {reply}");

    // Unsupported version.
    let reply = c.req(r#"{"v":2,"cmd":"status"}"#);
    assert_eq!(error_code(&reply), "invalid_input", "reply: {reply}");

    // The same misspelled option under the legacy envelope still works
    // (lenient by contract), annotated with the deprecation note.
    let reply =
        c.req(r#"{"cmd":"analyze","snapshot":"snap","sections":["basic"],"options":{"boostrap_reps":4}}"#);
    assert_eq!(json(&reply)["ok"].as_bool(), Some(true), "reply: {reply}");

    handle.shutdown();
    handle.join();
}

/// The churn oracle: day-`d` dataset fingerprints computed out of
/// process, from the same base dataset and churn parameters the server
/// uses, via a plain `ChurnStream` replay (no timeline, no checkpoints).
fn oracle_fingerprints(seed: u64, days: u32) -> Vec<u64> {
    let base = dataset();
    let mut stream =
        ChurnStream::from_graph(&base.graph, ChurnConfig { seed, ..ChurnConfig::default() });
    let mut fps = Vec::with_capacity(days as usize + 1);
    fps.push(base.fingerprint());
    for _ in 0..days {
        stream.next_day();
        let day_ds = Dataset { graph: stream.snapshot_graph(), ..base.clone() };
        fps.push(day_ds.fingerprint());
    }
    fps
}

#[test]
fn as_of_time_travel_matches_the_churn_oracle_with_zero_divergence() {
    let handle = start();
    let mut c = Client::connect(handle.local_addr());

    // Register over the wire with churn knobs; scale "small" builds the
    // same dataset as the local oracle's `Dataset::build`.
    let reply =
        c.req(r#"{"v":1,"cmd":"register","name":"t","scale":"small","churn_days":6,"churn_seed":9}"#);
    let v = json(&reply);
    assert_eq!(v["ok"].as_bool(), Some(true), "register failed: {reply}");
    assert_eq!(v["churn_days"].as_u64(), Some(6), "reply: {reply}");
    let base_fp = v["fingerprint"].as_u64().expect("fingerprint");
    let oracle = oracle_fingerprints(9, 6);
    assert_eq!(base_fp, oracle[0], "server base dataset diverged from the oracle");

    // Mini-soak: two passes over interleaved days. Every reply's
    // dataset fingerprint must match the oracle — zero divergences.
    let mut divergences = 0;
    for pass in 0..2 {
        for day in [1u32, 3, 5, 6, 2] {
            let reply = c.req(&format!(
                r#"{{"v":1,"cmd":"analyze","snapshot":"t","sections":["basic"],"as_of":{day}}}"#
            ));
            let v = json(&reply);
            assert_eq!(v["ok"].as_bool(), Some(true), "pass {pass} day {day}: {reply}");
            assert_eq!(v["as_of"].as_u64(), Some(day as u64), "reply: {reply}");
            if v["dataset_fingerprint"].as_u64() != Some(oracle[day as usize]) {
                divergences += 1;
            }
        }
    }
    assert_eq!(divergences, 0, "as_of replies diverged from the churn oracle");

    // Second pass repeated every key: the section cache absorbed it.
    let metrics = c.req(r#"{"v":1,"cmd":"metrics"}"#);
    assert!(
        counter(&metrics, "serve.asof_cache_hits") >= 5,
        "expected as_of cache hits, metrics: {metrics}"
    );
    let materializations = counter(&metrics, "serve.asof_materializations");
    assert!(
        (1..=10).contains(&materializations),
        "day materializations unbounded or absent: {metrics}"
    );

    // Status exposes the temporal block for churn-registered shards.
    let status = c.req(r#"{"v":1,"cmd":"status","snapshot":"t"}"#);
    assert!(status.contains("\"temporal\":{\"days\":6"), "status lost temporal: {status}");

    // Beyond the indexed horizon and on a churn-less snapshot: refused.
    let reply = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"t","sections":["basic"],"as_of":7}"#);
    assert_eq!(error_code(&reply), "invalid_input", "reply: {reply}");
    handle.register_dataset("plain", dataset().clone());
    let reply =
        c.req(r#"{"v":1,"cmd":"analyze","snapshot":"plain","sections":["basic"],"as_of":1}"#);
    assert_eq!(error_code(&reply), "invalid_input", "reply: {reply}");

    handle.shutdown();
    handle.join();
}

#[test]
fn equivalent_requests_share_one_cache_entry_regardless_of_spelling() {
    let handle = start();
    handle.register_dataset("s", dataset().clone());
    let mut c = Client::connect(handle.local_addr());

    // One semantic request, four spellings: v1 canonical order, v1
    // shuffled key order, v1 with whitespace, and the legacy envelope.
    let spellings = [
        r#"{"v":1,"cmd":"analyze","snapshot":"s","sections":["basic"],"options":{"seed":5}}"#,
        r#"{"options":{"seed":5},"sections":["basic"],"snapshot":"s","cmd":"analyze","v":1}"#,
        r#"  {"v": 1, "cmd": "analyze", "snapshot": "s", "sections": ["basic"], "options": {"seed": 5}}  "#,
        r#"{"cmd":"analyze","snapshot":"s","sections":["basic"],"options":{"seed":5}}"#,
    ];
    let mut sections = Vec::new();
    for line in spellings {
        let v = json(&c.req(line));
        assert_eq!(v["ok"].as_bool(), Some(true), "request failed: {line}");
        sections.push(serde_json::to_string(&v["sections"]).unwrap());
    }
    assert!(
        sections.windows(2).all(|w| w[0] == w[1]),
        "equivalent spellings produced different section payloads"
    );

    // The cache proves canonicalization: one miss, three hits.
    let metrics = c.req(r#"{"v":1,"cmd":"metrics"}"#);
    assert_eq!(counter(&metrics, "cache.misses"), 1, "metrics: {metrics}");
    assert_eq!(counter(&metrics, "cache.hits"), 3, "metrics: {metrics}");

    handle.shutdown();
    handle.join();
}
