//! Small-rate deterministic soak: an in-process open-loop run (seeded
//! Poisson arrivals, two snapshots, admission control on) that fails on
//! fingerprint divergence, non-monotone counters, a queue that does not
//! drain to zero, or a leaked connection.
//!
//! This is the CI-sized sibling of the `serve_load` harness (the
//! `serve-soak` verify lane runs both): same arrival-driven dispatch over
//! pipelined connections, same positional reply matching, same batch
//! [`run_analysis_section`] oracle — scaled to ≥500 requests so it stays
//! a test, not a benchmark. A sampler thread snapshots the server's
//! counters throughout the run; counters must never decrease, and after
//! drain the per-shard queue gauges must read zero with every connection
//! accounted for.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verified_net::{
    run_analysis_section, AnalysisCtx, AnalysisOptions, Dataset, Section, SynthesisConfig,
};
use vnet_obs::fingerprint_str;
use vnet_serve::{AdmissionClock, AdmissionPolicy, Server, ServerConfig};

const REQUESTS: usize = 600;
const RATE_RPS: f64 = 500.0;
const CONNS: usize = 4;
const CLIENTS: usize = 3;
const SNAPSHOTS: [&str; 2] = ["alpha", "beta"];
const SECTIONS: [Section; 3] = [Section::Basic, Section::Reciprocity, Section::Degrees];
const SEEDS: [u64; 2] = [21, 22];

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet()))
}

struct Expect {
    snapshot: usize,
    section: Section,
    seed: u64,
}

#[derive(Default)]
struct Outcome {
    ok: u64,
    rate_limited: u64,
    failures: Vec<String>,
}

fn reader_loop(
    stream: TcpStream,
    rx: mpsc::Receiver<Expect>,
    oracle: Arc<BTreeMap<(&'static str, u64), u64>>,
) -> Outcome {
    let mut out = Outcome::default();
    let mut reader = BufReader::new(stream);
    while let Ok(exp) = rx.recv() {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                out.failures.push("connection closed with replies outstanding".into());
                return out;
            }
            Err(e) => {
                out.failures.push(format!("read failed: {e}"));
                return out;
            }
            Ok(_) => {}
        }
        let v: serde_json::Value = match serde_json::from_str(line.trim_end()) {
            Ok(v) => v,
            Err(e) => {
                out.failures.push(format!("unparseable reply ({e}): {line}"));
                continue;
            }
        };
        if v["ok"].as_bool() == Some(true) {
            let want = oracle.get(&(exp.section.id(), exp.seed)).copied();
            let got = v["sections"][0]["fingerprint"].as_u64();
            if got != want {
                out.failures.push(format!(
                    "fingerprint divergence for {}/{}: served {got:?}, oracle {want:?}",
                    exp.section.id(),
                    exp.seed
                ));
            } else if v["snapshot"].as_str() != Some(SNAPSHOTS[exp.snapshot]) {
                out.failures.push(format!("reply from the wrong shard: {line}"));
            } else {
                out.ok += 1;
            }
        } else if v["error"]["code"].as_str() == Some("rate_limited") {
            if v["error"]["retry_after_ms"].as_u64().unwrap_or(0) == 0 {
                out.failures.push(format!("rate_limited without a retry hint: {line}"));
            } else {
                out.rate_limited += 1;
            }
        } else {
            out.failures.push(format!("unexpected reply: {line}"));
        }
    }
    out
}

#[test]
fn open_loop_soak_stays_faithful_and_drains_clean() {
    // Oracle first: the batch fingerprint for every (section, seed) key
    // the schedule can request (both snapshots share one dataset here —
    // routing correctness is serve_shards' job; this test is about
    // sustained fidelity and clean teardown).
    let ctx = AnalysisCtx::quiet();
    let mut oracle = BTreeMap::new();
    for &section in &SECTIONS {
        for &seed in &SEEDS {
            let opts = AnalysisOptions::quick().to_builder().seed(seed).build();
            let payload = run_analysis_section(dataset(), section, &opts, &ctx)
                .unwrap_or_else(|e| panic!("oracle {} failed: {e}", section.id()));
            let json = serde_json::to_string(&payload).expect("serialize oracle payload");
            oracle.insert((section.id(), seed), fingerprint_str(&json));
        }
    }
    let oracle = Arc::new(oracle);

    let handle = Server::start(ServerConfig {
        max_in_flight: 2,
        queue_depth: 16,
        admission: Some(AdmissionPolicy { requests: 40, window_millis: 200 }),
        admission_clock: AdmissionClock::wall(),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    for name in SNAPSHOTS {
        handle.register_dataset(name, dataset().clone());
    }
    let addr = handle.local_addr();
    let obs = handle.obs_handle();

    // Sampler: counters must be monotone non-decreasing for the whole
    // run. (Gauges legitimately oscillate; monotonicity is a counter
    // contract.)
    const WATCHED: [&str; 4] =
        ["serve.admitted", "serve.rejected{reason=rate_limited}", "cache.hits", "serve.requests"];
    let stop_sampling = Arc::new(AtomicBool::new(false));
    let sampler = {
        let obs = Arc::clone(&obs);
        let stop = Arc::clone(&stop_sampling);
        std::thread::spawn(move || {
            let mut samples: Vec<[u64; 4]> = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let mut row = [0u64; 4];
                for (i, name) in WATCHED.iter().enumerate() {
                    row[i] = obs.metrics().counter(name, &[]);
                }
                samples.push(row);
                std::thread::sleep(Duration::from_millis(10));
            }
            samples
        })
    };

    // Seeded open-loop schedule over pipelined connections.
    let mut writers = Vec::with_capacity(CONNS);
    let mut senders = Vec::with_capacity(CONNS);
    let mut readers = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        let (tx, rx) = mpsc::channel::<Expect>();
        let read_half = stream.try_clone().expect("clone stream");
        let oracle = Arc::clone(&oracle);
        readers.push(std::thread::spawn(move || reader_loop(read_half, rx, oracle)));
        writers.push(stream);
        senders.push(tx);
    }
    let mut rng = StdRng::seed_from_u64(42);
    let mut at = 0.0f64;
    let started = Instant::now();
    for i in 0..REQUESTS {
        at += -(1.0 - rng.random::<f64>()).ln() / RATE_RPS;
        let snapshot = rng.random_range(0..SNAPSHOTS.len());
        let section = SECTIONS[rng.random_range(0..SECTIONS.len())];
        let seed = SEEDS[rng.random_range(0..SEEDS.len())];
        let client = rng.random_range(0..CLIENTS);
        let due = Duration::from_secs_f64(at);
        let now = started.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let conn = i % CONNS;
        senders[conn].send(Expect { snapshot, section, seed }).expect("reader alive");
        let request = format!(
            "{{\"v\":1,\"cmd\":\"analyze\",\"snapshot\":\"{}\",\"sections\":[\"{}\"],\"options\":{{\"seed\":{seed}}},\"client\":\"c{client}\"}}\n",
            SNAPSHOTS[snapshot],
            section.id(),
        );
        writers[conn].write_all(request.as_bytes()).expect("send request");
    }
    drop(senders);
    let mut total = Outcome::default();
    for t in readers {
        let out = t.join().expect("reader thread");
        total.ok += out.ok;
        total.rate_limited += out.rate_limited;
        total.failures.extend(out.failures);
    }
    drop(writers);
    stop_sampling.store(true, Ordering::SeqCst);
    let samples = sampler.join().expect("sampler thread");

    assert!(total.failures.is_empty(), "soak failures: {:#?}", total.failures);
    assert_eq!(
        total.ok + total.rate_limited,
        REQUESTS as u64,
        "every offered request must be answered exactly once"
    );
    assert!(total.ok >= 100, "soak admitted too little to be meaningful: {}", total.ok);

    // The harness's tallies must agree with the server's own counters.
    assert_eq!(obs.metrics().counter("serve.admitted", &[]), total.ok);
    assert_eq!(
        obs.metrics().counter("serve.rejected{reason=rate_limited}", &[]),
        total.rate_limited
    );
    let per_shard: u64 = SNAPSHOTS
        .iter()
        .map(|name| obs.metrics().counter("serve.requests", &[("shard", name)]))
        .sum();
    assert_eq!(per_shard, total.ok, "shard-labelled admissions must sum to the total");

    // Counter monotonicity across every sampler snapshot.
    for pair in samples.windows(2) {
        for (i, name) in WATCHED.iter().enumerate() {
            assert!(
                pair[1][i] >= pair[0][i],
                "counter {name} went backwards: {} -> {}",
                pair[0][i],
                pair[1][i]
            );
        }
    }
    assert!(samples.len() >= 2, "sampler never ran");

    // Drain and teardown: queues settle to zero, no connection leaks.
    handle.shutdown();
    handle.join();
    for name in SNAPSHOTS {
        for gauge in ["serve.queue_depth", "serve.jobs_running"] {
            assert_eq!(
                obs.metrics().gauge(gauge, &[("shard", name)]),
                Some(0.0),
                "{gauge}{{shard={name}}} did not drain to zero"
            );
        }
    }
    assert_eq!(
        obs.metrics().counter("serve.conn_opened", &[]),
        obs.metrics().counter("serve.conn_closed", &[]),
        "connection leak after drain"
    );
    assert_eq!(obs.metrics().gauge("serve.conn_active", &[]), Some(0.0));
}
