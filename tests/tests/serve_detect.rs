//! Loopback battery for the `detect` serve surface: adversarial
//! registration (`sybil:true` plants the calibrated workload and rides
//! its campaigns on the churn timeline), the v1 `detect` command's
//! envelope, day-awareness via `as_of`, reply-byte determinism (the
//! detect cache must replay the exact bytes a cold run produced), and
//! the structured errors for snapshots without a planted workload.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use vnet_serve::{Server, ServerConfig};
use vnet_synth::SybilConfig;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn req(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_string()
    }
}

fn json(reply: &str) -> serde_json::Value {
    serde_json::from_str(reply).expect("reply parses as JSON")
}

fn error_code(reply: &str) -> String {
    json(reply)["error"]["code"].as_str().unwrap_or("").to_string()
}

/// Array length by indexing (the vendored `serde_json` subset has no
/// `as_array`).
fn arr_len(v: &serde_json::Value) -> usize {
    let mut i = 0;
    while !v[i].is_null() {
        i += 1;
    }
    i
}

/// Churn horizon covering every default campaign plus calm tail days
/// (mirrors the library battery in `sybil_detection.rs`).
fn horizon() -> u32 {
    let cfg = SybilConfig::default();
    cfg.burst_day + (cfg.bursts - 1) * cfg.burst_stride + cfg.burst_span + 2
}

#[test]
fn detect_round_trip_day_awareness_and_errors() {
    let handle = Server::start(ServerConfig::default()).expect("bind loopback server");
    let mut c = Client::connect(handle.local_addr());
    let days = horizon();
    let planted = SybilConfig::default().planted_count();

    // Adversarial registration: the reply reports the planted count.
    let reg = c.req(&format!(
        r#"{{"v":1,"cmd":"register","name":"adv","scale":"small","churn_days":{days},"churn_seed":23,"sybil":true}}"#
    ));
    let reg_v = json(&reg);
    assert_eq!(reg_v["ok"].as_bool(), Some(true), "register failed: {reg}");
    assert_eq!(reg_v["churn_days"].as_u64(), Some(days as u64));
    assert_eq!(reg_v["sybil_planted"].as_u64(), Some(planted as u64));

    // Full-horizon detection: default as_of is the last churn day.
    let detect = c.req(r#"{"v":1,"cmd":"detect","snapshot":"adv"}"#);
    let v = json(&detect);
    assert_eq!(v["ok"].as_bool(), Some(true), "detect failed: {detect}");
    assert_eq!(v["as_of"].as_u64(), Some(days as u64));
    assert_eq!(v["top_k"].as_u64(), Some(20));
    assert!(v["fingerprint"].as_u64().unwrap() != 0);
    let d = &v["detect"];
    assert_eq!(d["eval"]["planted"].as_u64(), Some(planted as u64));
    assert_eq!(arr_len(&d["top"]), 20);
    assert!(
        arr_len(&d["burst_days"]) > 0,
        "campaign days not detected over the wire: {detect}"
    );
    // The fused ranking actually separates the planted class on the
    // served dataset too (loose floor; the calibrated ≥0.9 recall floor
    // is pinned against the library battery's generator in
    // `sybil_detection.rs`).
    assert!(
        d["eval"]["auc"].as_f64().unwrap() > 0.8,
        "served detection barely better than chance: {detect}"
    );

    // Byte determinism: a repeat must replay the exact bytes (served
    // from the detect cache, but the contract is the bytes, not the
    // path).
    let again = c.req(r#"{"v":1,"cmd":"detect","snapshot":"adv"}"#);
    assert_eq!(detect, again, "detect reply bytes changed on repeat");

    // Day-awareness: an early-day view is a different (cached-separately)
    // result with its own envelope day.
    let early = c.req(r#"{"v":1,"cmd":"detect","snapshot":"adv","as_of":2,"top_k":3}"#);
    let ev = json(&early);
    assert_eq!(ev["ok"].as_bool(), Some(true), "as_of detect failed: {early}");
    assert_eq!(ev["as_of"].as_u64(), Some(2));
    assert_eq!(arr_len(&ev["detect"]["top"]), 3);
    assert!(
        ev["fingerprint"].as_u64() != v["fingerprint"].as_u64(),
        "day-2 view cannot equal the full-horizon view"
    );

    // Structured errors: beyond the horizon, unknown snapshot, and a
    // snapshot registered without the planted workload.
    let beyond = c.req(&format!(
        r#"{{"v":1,"cmd":"detect","snapshot":"adv","as_of":{}}}"#,
        days + 1
    ));
    assert_eq!(error_code(&beyond), "invalid_input", "got: {beyond}");
    let unknown = c.req(r#"{"v":1,"cmd":"detect","snapshot":"nope"}"#);
    assert_eq!(error_code(&unknown), "unknown_snapshot", "got: {unknown}");
    let plain = c.req(r#"{"v":1,"cmd":"register","name":"plain","scale":"small","churn_days":3}"#);
    assert_eq!(json(&plain)["ok"].as_bool(), Some(true));
    assert!(!plain.contains("sybil_planted"), "plain register grew a sybil field: {plain}");
    let no_workload = c.req(r#"{"v":1,"cmd":"detect","snapshot":"plain"}"#);
    assert_eq!(error_code(&no_workload), "invalid_input", "got: {no_workload}");
    assert!(
        no_workload.contains("no sybil workload"),
        "error should say what is missing: {no_workload}"
    );

    handle.shutdown();
    handle.join();
}
