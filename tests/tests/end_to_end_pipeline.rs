//! The grand integration test: synthesize a society, crawl it through the
//! simulated API, run every analysis of the paper, and check the complete
//! Section III–V fingerprint in one place.
//!
//! This is the executable form of EXPERIMENTS.md's "shape expectations"
//! column.

use verified_net::{run_analysis, AnalysisCtx, AnalysisOptions, Dataset, SynthesisConfig};

fn report() -> (Dataset, verified_net::AnalysisReport) {
    let ctx = AnalysisCtx::quiet();
    let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
    let report = run_analysis(&ds, &AnalysisOptions::quick(), &ctx);
    (ds, report)
}

#[test]
fn full_paper_fingerprint() {
    let (ds, r) = report();

    // §III — dataset shape.
    assert_eq!(r.dataset.users, ds.graph.node_count());
    assert!(r.dataset.density < 0.05, "density {}", r.dataset.density);
    assert!(r.dataset.users > 2_500, "too few English users: {}", r.dataset.users);

    // §IV-A — connectivity fingerprint.
    assert!(r.basic.giant_scc_fraction > 0.9);
    assert!(r.basic.weak_components >= r.basic.isolated + 1);
    assert!(r.basic.attracting_components >= r.basic.isolated);
    assert!(r.basic.assortativity_out_in < 0.02, "homophily appeared: {}", r.basic.assortativity_out_in);
    assert!(r.basic.clustering > 0.01 && r.basic.clustering < 0.4);

    // §IV-B — power laws beat alternatives.
    assert!(r.degrees.alpha > 2.2 && r.degrees.alpha < 4.6, "alpha {}", r.degrees.alpha);
    for v in &r.degrees.vuong {
        if v.alternative != "log-normal" {
            assert!(v.lr > 0.0, "power law lost to {} (lr {})", v.alternative, v.lr);
        }
    }
    assert!(r.eigen.alpha > 1.8 && r.eigen.alpha < 6.0, "eigen alpha {}", r.eigen.alpha);
    assert!(!r.eigen.eigenvalues.is_empty());

    // §IV-C — reciprocity band.
    assert!(r.reciprocity.reciprocity > 0.221, "reciprocity {}", r.reciprocity.reciprocity);
    assert!(r.reciprocity.reciprocity < 0.68);

    // §IV-D — short separation.
    assert!(r.separation.mean < 3.43, "mean separation {}", r.separation.mean);
    let (mode, _) = r.separation.histogram.iter().max_by_key(|&&(_, c)| c).unwrap();
    assert!((2..=3).contains(mode));

    // §IV-E — bios.
    assert_eq!(r.bios.top_bigrams[0].ngram, "Official Twitter");
    assert_eq!(r.bios.top_trigrams[0].ngram, "Official Twitter Account");

    // §IV-F — centrality correlations all positive; PageRank strongest pair.
    for p in &r.centrality.panels {
        assert!(p.pearson_log > 0.0, "panel {} correlation {}", p.id, p.pearson_log);
    }
    let pr_follow = r.centrality.panels.iter().find(|p| p.id == "d").unwrap();
    let bc_follow = r.centrality.panels.iter().find(|p| p.id == "b").unwrap();
    assert!(
        pr_follow.pearson_log > bc_follow.pearson_log - 0.05,
        "PageRank ({}) should be at least as predictive as betweenness ({})",
        pr_follow.pearson_log,
        bc_follow.pearson_log
    );

    // §V — activity.
    assert!(r.activity.ljung_box_max_p < 1e-6);
    assert!(r.activity.box_pierce_max_p < 1e-6);
    assert!(r.activity.stationary);
    assert!(!r.activity.changepoints.is_empty() && r.activity.changepoints.len() <= 4);
}

#[test]
fn report_round_trips_through_json() {
    let (_, r) = report();
    let json = serde_json::to_string(&r).expect("serialize");
    let value: serde_json::Value = serde_json::from_str(&json).expect("parse");
    assert_eq!(value["dataset"]["users"].as_u64().unwrap() as usize, r.dataset.users);
    assert!(value["degrees"]["alpha"].as_f64().unwrap() > 2.0);
    assert_eq!(
        value["bios"]["top_bigrams"][0]["ngram"].as_str().unwrap(),
        "Official Twitter"
    );
}

#[test]
fn analysis_is_deterministic_given_seed() {
    let ctx = AnalysisCtx::quiet();
    let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
    let a = run_analysis(&ds, &AnalysisOptions::quick(), &ctx);
    let b = run_analysis(&ds, &AnalysisOptions::quick(), &ctx);
    assert_eq!(a.degrees.alpha, b.degrees.alpha);
    assert_eq!(a.separation.mean, b.separation.mean);
    assert_eq!(a.basic.clustering, b.basic.clustering);
    assert_eq!(
        serde_json::to_string(&a.activity.changepoints).unwrap(),
        serde_json::to_string(&b.activity.changepoints).unwrap()
    );
}
