//! Conformance battery for the deterministic fault-injection harness.
//!
//! The central claim (`crates/twittersim/src/faults.rs`): every fault kind
//! is lossless at the protocol level, so a crawl run through any *healing*
//! fault plan — under a realistic, clock-advancing rate-limit policy —
//! converges to a dataset **bit-identical** to the fault-free crawl. The
//! properties below check that claim over randomized societies and plans,
//! pin the fault accounting with golden values, and exercise the
//! checkpoint/resume path including a JSON round-trip.

use proptest::prelude::*;
use vnet_integration_tests::{fault_free_crawl, healing_fault_plan, tiny_society_config};
use vnet_twittersim::{
    ApiError, CrawlCheckpoint, CrawlOutcome, Crawler, Endpoint, FaultClause, FaultPlan,
    RateLimitPolicy, SimClock, Society, SocietyConfig, TwitterApi,
};

/// Run the churn-hardened crawl through `plan` under realistic limits.
fn faulted_outcome(society: &Society, plan: &FaultPlan) -> CrawlOutcome {
    let api = TwitterApi::new(society, SimClock::new(), RateLimitPolicy::default(), 0.0)
        .with_faults(plan.clone());
    Crawler::new(&api).crawl_resumable(None)
}

/// A fixed tiny society for the deterministic (non-property) tests.
fn fixed_tiny_config() -> SocietyConfig {
    let mut cfg = SocietyConfig::small();
    cfg.net.nodes = 180;
    cfg.net.mean_out_degree = 9.0;
    cfg.net.celebrity_sinks = 2;
    cfg.seed = 0xBEEF;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE conformance property: any eventually-healing plan yields a
    /// crawled dataset bit-identical to the fault-free crawl — same graph,
    /// same node-id assignment, same profiles.
    #[test]
    fn healing_plans_converge_to_the_fault_free_crawl(
        cfg in tiny_society_config(),
        plan in healing_fault_plan(),
    ) {
        let society = Society::generate(&cfg);
        let reference = fault_free_crawl(&society);
        match faulted_outcome(&society, &plan) {
            CrawlOutcome::Complete(ds) => {
                prop_assert_eq!(&ds.graph, &reference.graph);
                prop_assert_eq!(&ds.platform_ids, &reference.platform_ids);
                prop_assert_eq!(&ds.profiles, &reference.profiles);
            }
            other => prop_assert!(
                false,
                "healing plan must complete, got {:?} for plan {:?}",
                other,
                plan
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replay determinism: binding the same plan to a fresh API over the
    /// same society reproduces the crawl exactly — identical CrawlStats
    /// (including the fault tally and simulated clock) and dataset.
    #[test]
    fn same_plan_seed_replays_identical_stats(
        cfg in tiny_society_config(),
        plan in healing_fault_plan(),
    ) {
        let society = Society::generate(&cfg);
        let complete = |outcome: CrawlOutcome| match outcome {
            CrawlOutcome::Complete(ds) => ds,
            other => panic!("healing plan must complete: {other:?}"),
        };
        let a = complete(faulted_outcome(&society, &plan));
        let b = complete(faulted_outcome(&society, &plan));
        prop_assert_eq!(&a.stats, &b.stats);
        prop_assert_eq!(&a.graph, &b.graph);
        prop_assert_eq!(&a.profiles, &b.profiles);
    }
}

/// A plan stacking every clause kind at once (the generator draws at most
/// four; this pins the all-kinds interaction deterministically).
fn all_kinds_plan() -> FaultPlan {
    FaultPlan::new(0xC0FFEE)
        .with(FaultClause::Outage { endpoint: Endpoint::VerifiedIds, from: 0, until: 300 })
        .with(FaultClause::ErrorBurst {
            endpoint: Endpoint::FriendsIds,
            probability: 0.5,
            from: 0,
            until: 1_200,
        })
        .with(FaultClause::TruncatedPages {
            endpoint: Endpoint::Any,
            probability: 0.7,
            from: 0,
            until: 1_800,
        })
        .with(FaultClause::DuplicatedPages {
            endpoint: Endpoint::Any,
            probability: 0.7,
            from: 0,
            until: 1_800,
        })
        .with(FaultClause::StaleProfiles { probability: 0.6, from: 0, until: 2_400 })
        .with(FaultClause::RateLimitSkew { extra_secs: 45, from: 0, until: 3_000 })
        .with(FaultClause::RosterFlicker { probability: 0.2, from: 120, until: 900 })
}

#[test]
fn every_fault_kind_at_once_still_converges() {
    let society = Society::generate(&fixed_tiny_config());
    let reference = fault_free_crawl(&society);
    match faulted_outcome(&society, &all_kinds_plan()) {
        CrawlOutcome::Complete(ds) => {
            assert_eq!(ds.graph, reference.graph);
            assert_eq!(ds.platform_ids, reference.platform_ids);
            assert_eq!(ds.profiles, reference.profiles);
            assert!(ds.stats.faults.total() > 0, "faults must have fired");
        }
        other => panic!("all-kinds plan must still complete: {other:?}"),
    }
}

/// Golden fault accounting: the exact tally for a pinned (society, plan)
/// pair. Any change to decision salting, attempt counting, backoff, or
/// pagination shows up here first — by design, since replayability is the
/// harness's core contract.
#[test]
fn golden_fault_accounting_for_pinned_plan() {
    let society = Society::generate(&fixed_tiny_config());
    let ds = match faulted_outcome(&society, &all_kinds_plan()) {
        CrawlOutcome::Complete(ds) => ds,
        other => panic!("pinned plan must complete: {other:?}"),
    };
    let t = &ds.stats.faults;
    let golden = (
        t.outage_failures,
        t.burst_failures,
        t.truncated_pages,
        t.duplicated_ids,
        t.stale_reads,
        t.skewed_waits,
        t.flickered_roster_reads,
        t.expired_cursors,
        ds.stats.cursor_restarts,
        ds.stats.duplicate_ids_dropped,
        ds.stats.passes,
    );
    assert_eq!(golden, (7, 5, 18, 48, 83, 3, 8, 0, 0, 48, 2), "golden tally moved: {golden:?}");
}

#[test]
fn aborted_crawls_resume_from_a_json_checkpoint() {
    let society = Society::generate(&fixed_tiny_config());
    let reference = fault_free_crawl(&society);

    // A permanent friends/ids outage exhausts the retry budget: the crawl
    // must abort with a checkpoint holding the harvested roster.
    let doom = FaultPlan::new(1).with(FaultClause::Outage {
        endpoint: Endpoint::FriendsIds,
        from: 0,
        until: u64::MAX,
    });
    let api = TwitterApi::new(&society, SimClock::new(), RateLimitPolicy::default(), 0.0)
        .with_faults(doom);
    let checkpoint = match Crawler::new(&api).crawl_resumable(None) {
        CrawlOutcome::Aborted { error, checkpoint } => {
            assert_eq!(error, ApiError::ServerError);
            checkpoint
        }
        other => panic!("permanent outage must abort: {other:?}"),
    };
    assert!(checkpoint.harvested, "roster harvest precedes the friends crawl");
    assert_eq!(checkpoint.next_index, 0, "no friend list can have completed");
    assert!(checkpoint.stats.faults.outage_failures > 0);

    // The checkpoint must survive serialization (operators store it on
    // disk between crawl attempts).
    let json = serde_json::to_string(&*checkpoint).expect("checkpoint serializes");
    let restored: CrawlCheckpoint = serde_json::from_str(&json).expect("checkpoint parses");
    assert_eq!(restored, *checkpoint);

    // Resuming against a healthy API completes and converges.
    let api2 = TwitterApi::new(&society, SimClock::new(), RateLimitPolicy::default(), 0.0);
    match Crawler::new(&api2).crawl_resumable(Some(restored)) {
        CrawlOutcome::Complete(ds) => {
            assert_eq!(ds.graph, reference.graph);
            assert_eq!(ds.platform_ids, reference.platform_ids);
            assert_eq!(ds.profiles, reference.profiles);
            assert!(
                ds.stats.faults.outage_failures > 0,
                "stats must carry the pre-abort fault history across the resume"
            );
        }
        other => panic!("resumed crawl must complete: {other:?}"),
    }
}

#[test]
fn mid_listing_churn_expires_cursors_and_still_converges() {
    // Truncation shreds the roster listing into many short pages while a
    // tight quota forces waits between them; flicker windows change the
    // roster generation during those waits. Continuation cursors must
    // expire, the listing must restart, and — once the windows close —
    // the crawl must still converge exactly.
    let society = Society::generate(&fixed_tiny_config());
    let reference = fault_free_crawl(&society);
    let plan = FaultPlan::new(77)
        .with(FaultClause::TruncatedPages {
            endpoint: Endpoint::VerifiedIds,
            probability: 1.0,
            from: 0,
            until: 3_000,
        })
        .with(FaultClause::RosterFlicker { probability: 0.3, from: 0, until: 1_000 })
        .with(FaultClause::RosterFlicker { probability: 0.3, from: 1_000, until: 2_000 })
        .with(FaultClause::RosterFlicker { probability: 0.3, from: 2_000, until: 3_000 });
    let policy = RateLimitPolicy { roster: 2, ..RateLimitPolicy::default() };
    let api =
        TwitterApi::new(&society, SimClock::new(), policy, 0.0).with_faults(plan);
    match Crawler::new(&api).crawl_resumable(None) {
        CrawlOutcome::Complete(ds) => {
            assert_eq!(ds.graph, reference.graph);
            assert_eq!(ds.platform_ids, reference.platform_ids);
            assert!(ds.stats.cursor_restarts > 0, "expiry must have forced restarts");
            assert!(ds.stats.faults.expired_cursors > 0);
            assert!(ds.stats.faults.truncated_pages > 0);
        }
        other => panic!("plan heals at t=3000, crawl must complete: {other:?}"),
    }
}

#[test]
fn perpetual_roster_churn_degrades_gracefully() {
    // Thirty back-to-back flicker windows outlast the entire pass budget:
    // every end-of-pass verification sees a different roster, so the crawl
    // must give up after MAX_PASSES and hand back an internally consistent
    // dataset labelled with the measured drift.
    let society = Society::generate(&fixed_tiny_config());
    let plan = (0..30u64).fold(FaultPlan::new(99), |p, k| {
        p.with(FaultClause::RosterFlicker {
            probability: 0.3,
            from: k * 3_000,
            until: (k + 1) * 3_000,
        })
    });
    match faulted_outcome(&society, &plan) {
        CrawlOutcome::Degraded { dataset, roster_drift, passes } => {
            assert_eq!(passes, 8, "pass budget");
            assert!(roster_drift > 0);
            // Internally consistent: profiles aligned with the graph, all
            // English, flicker on record.
            assert_eq!(dataset.graph.node_count(), dataset.profiles.len());
            assert_eq!(dataset.graph.node_count(), dataset.platform_ids.len());
            assert!(dataset.profiles.iter().all(|p| p.lang == "en"));
            assert!(dataset.stats.faults.flickered_roster_reads > 0);
        }
        other => panic!("perpetual churn must degrade: {other:?}"),
    }
}

#[test]
fn degraded_datasets_are_accepted_with_provenance() {
    // The core crate accepts degraded crawls and records how they came to
    // be — analyses choose their own tolerance.
    use verified_net::{Dataset, DatasetProvenance, SynthesisConfig};
    let mut config = SynthesisConfig::small();
    config.society = fixed_tiny_config();
    config.rate_limits = RateLimitPolicy::default();
    let plan = (0..30u64).fold(FaultPlan::new(99), |p, k| {
        p.with(FaultClause::RosterFlicker {
            probability: 0.3,
            from: k * 3_000,
            until: (k + 1) * 3_000,
        })
    });
    let ds = Dataset::build_with_faults(&config, &plan, &verified_net::AnalysisCtx::quiet())
        .expect("degraded is not an error");
    match ds.provenance {
        DatasetProvenance::FaultInjected { seed, degraded, passes } => {
            assert_eq!(seed, 99);
            assert!(degraded);
            assert_eq!(passes, 8);
        }
        other => panic!("wrong provenance: {other:?}"),
    }
    assert_eq!(ds.graph.node_count(), ds.profiles.len());
    assert_eq!(ds.summary().users, ds.graph.node_count());
}
