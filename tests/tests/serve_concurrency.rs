//! Concurrency battery for the rebuilt `vnet-serve` execution layer.
//!
//! Pins the three behaviours the executor/framing/single-flight redesign
//! exists for:
//!
//! 1. **Slow writers lose no bytes** — a request trickled across many
//!    read-timeout ticks still parses (the regression that motivated the
//!    incremental `LineReader`; the old `read_line` + `line.clear()` loop
//!    silently corrupted any request written across >100 ms).
//! 2. **Single-flight coalescing** — concurrent identical requests on a
//!    cold cache compute once (`serve.coalesced == 1`) and both replies
//!    are byte-identical to the batch `run_analysis_section` fingerprint.
//! 3. **Event-driven drain** — shutdown under in-flight load answers every
//!    admitted request, refuses late ones with `shutting_down`, and
//!    drains on a condvar (`serve.drain_wakeups` stays a handful, where a
//!    5 ms poll loop would take hundreds of iterations).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Barrier, OnceLock};
use std::time::Duration;

use verified_net::{
    run_analysis_section, AnalysisCtx, AnalysisOptions, Dataset, Section, SynthesisConfig,
};
use vnet_serve::{Server, ServerConfig, ServerHandle};

/// One small dataset shared by every test in this file.
fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet()))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn req(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        self.read_reply()
    }

    fn read_reply(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        assert!(reply.ends_with('\n'), "reply not line-terminated: {reply:?}");
        reply.trim_end().to_string()
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config).expect("bind loopback server")
}

fn counter(handle: &ServerHandle, name: &str) -> u64 {
    handle.obs_handle().metrics().counter(name, &[])
}

/// The headline regression: one request written byte-by-byte with gaps
/// longer than the server's 100 ms read-timeout tick. Every tick used to
/// discard the partial line; now the framer carries it across ticks.
#[test]
fn slow_writer_request_survives_read_timeout_ticks() {
    let handle = start(ServerConfig::default());
    let mut c = Client::connect(handle.local_addr());

    let request = b"{\"cmd\":\"status\"}\n";
    for &byte in request.iter() {
        c.writer.write_all(&[byte]).expect("send one byte");
        c.writer.flush().expect("flush one byte");
        // > the 100 ms read tick, so every byte lands in a fresh tick.
        std::thread::sleep(Duration::from_millis(150));
    }
    let reply = c.read_reply();
    let v: serde_json::Value = serde_json::from_str(&reply).expect("reply parses");
    assert_eq!(
        v["ok"].as_bool(),
        Some(true),
        "slow-writer request was corrupted or dropped: {reply}"
    );
    assert_eq!(counter(&handle, "serve.bad_requests"), 0, "partial bytes were misparsed");

    handle.shutdown();
    handle.join();
}

/// Two clients, cold cache, identical request: the computation runs once,
/// the second client coalesces onto the first's flight, and both replies
/// carry the exact fingerprint a batch `run_analysis_section` produces.
#[test]
fn concurrent_identical_requests_coalesce_to_one_computation() {
    let handle = start(ServerConfig::default());
    handle.register_dataset("s", dataset().clone());
    let addr = handle.local_addr();

    let analyze =
        r#"{"v":1,"cmd":"analyze","snapshot":"s","sections":["centrality"],"options":{"seed":42}}"#;
    let barrier = std::sync::Arc::new(Barrier::new(2));
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                barrier.wait();
                c.req(analyze)
            })
        })
        .collect();
    let replies: Vec<String> =
        clients.into_iter().map(|t| t.join().expect("client thread")).collect();

    assert_eq!(replies[0], replies[1], "coalesced reply diverged from the leader's");
    assert_eq!(
        counter(&handle, "serve.coalesced"),
        1,
        "exactly one request should have coalesced onto the open flight"
    );
    assert_eq!(counter(&handle, "cache.misses"), 1, "section was computed more than once");

    // Byte-identity with the batch path: the served fingerprint equals the
    // FNV of the serialized `run_analysis_section` payload — the same
    // digest a `bench repro` manifest records as `section.centrality`.
    let opts = AnalysisOptions::quick().to_builder().seed(42).build();
    let payload = run_analysis_section(dataset(), Section::Centrality, &opts, &AnalysisCtx::quiet())
        .expect("batch centrality");
    let expected =
        vnet_obs::fingerprint_str(&serde_json::to_string(&payload).expect("serialize payload"));
    let v: serde_json::Value = serde_json::from_str(&replies[0]).expect("reply parses");
    assert_eq!(
        v["sections"][0]["fingerprint"].as_u64(),
        Some(expected),
        "served bytes diverged from the batch computation"
    );

    handle.shutdown();
    handle.join();
}

/// Shutdown while admitted analyses are queued and running: every admitted
/// client gets its full reply, a request arriving after the shutdown is
/// refused with `shutting_down`, and the drain is event-driven (condvar
/// wakeups, not a 5 ms poll). The test never sleeps on wall-clock guesses:
/// it observes admission and drain state through `status` round-trips.
#[test]
fn drain_under_load_is_lossless_and_event_driven() {
    // One worker, deep queue: four admitted jobs run strictly one after
    // another, so the drain provably spans multiple job completions.
    let config =
        ServerConfig { max_in_flight: 1, queue_depth: 8, ..ServerConfig::default() };
    let handle = start(config);
    handle.register_dataset("s", dataset().clone());
    let addr = handle.local_addr();

    // The observer connects before the shutdown so its connection outlives
    // the listener; its back-to-back requests keep the connection busy.
    let mut observer = Client::connect(addr);

    let in_flight: Vec<_> = [3u64, 4, 5, 6]
        .into_iter()
        .map(|seed| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                c.req(&format!(
                    r#"{{"v":1,"cmd":"analyze","snapshot":"s","sections":["centrality"],"options":{{"seed":{seed}}}}}"#
                ))
            })
        })
        .collect();
    // Wait (by asking, not sleeping) until all four have been admitted:
    // `serve.requests` counts admissions cumulatively, so this terminates
    // even if some jobs already completed.
    while counter(&handle, "serve.requests") < 4 {
        let status = observer.req(r#"{"v":1,"cmd":"status"}"#);
        let v: serde_json::Value = serde_json::from_str(&status).expect("status parses");
        assert_eq!(v["ok"].as_bool(), Some(true), "status failed mid-admission: {status}");
    }

    // Shutdown drains in a background client; its reply blocks until
    // quiescence.
    let shutdown = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.req(r#"{"v":1,"cmd":"shutdown"}"#)
    });

    // The observer watches the shutting_down flag flip, then gets refused:
    // the flag is set before the drain starts and never clears, so this
    // sequence is race-free regardless of how fast the drain finishes.
    loop {
        let status = observer.req(r#"{"v":1,"cmd":"status"}"#);
        let v: serde_json::Value = serde_json::from_str(&status).expect("status parses");
        if v["shutting_down"].as_bool() == Some(true) {
            break;
        }
    }
    let refused = observer.req(r#"{"v":1,"cmd":"analyze","snapshot":"s","sections":["basic"]}"#);
    let v: serde_json::Value = serde_json::from_str(&refused).expect("refusal parses");
    assert_eq!(v["ok"].as_bool(), Some(false), "late request was admitted mid-drain");
    assert_eq!(v["error"]["code"].as_str(), Some("shutting_down"), "refusal: {refused}");

    for t in in_flight {
        let reply = t.join().expect("in-flight client thread");
        let v: serde_json::Value = serde_json::from_str(&reply).expect("reply parses");
        assert_eq!(v["ok"].as_bool(), Some(true), "in-flight request dropped: {reply}");
        assert_eq!(v["sections"][0]["section"].as_str(), Some("centrality"));
    }
    let drained = shutdown.join().expect("shutdown client thread");
    assert!(drained.contains("\"drained\":true"), "shutdown reply: {drained}");

    // The no-poll assertion: the drain slept on the executor's quiescence
    // condvar, which workers signal only when nothing is queued or
    // running. The old 5 ms sleep loop would have iterated once per 5 ms
    // of remaining work; the condvar takes at most a handful of wakeups
    // no matter how long the four serialized jobs run.
    let wakeups = counter(&handle, "serve.drain_wakeups");
    assert!(
        wakeups <= 16,
        "drain_wakeups={wakeups}: a 5 ms poll over this load would take dozens of iterations"
    );
    let manifest = handle.obs_handle().manifest("serve", 0);
    let drain_hist = manifest
        .histograms
        .get("serve.drain_wall_micros")
        .expect("drain duration histogram recorded");
    assert_eq!(drain_hist.count, 1);

    handle.join();
    assert!(TcpStream::connect(addr).is_err(), "server still accepting after drain");
}
