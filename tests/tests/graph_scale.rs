//! The `graph-scale` battery: streaming-CSR equivalence and memory-budget
//! contracts (see `docs/SCALING.md`).
//!
//! The streaming two-pass [`vnet_graph::StreamingBuilder`] must be a pure
//! optimization: same seeded society, same frozen graph, same deterministic
//! manifest bytes as the Vec-staged reference path — only the arena byte
//! accounting may differ, and that accounting is scrubbed from the
//! deterministic view like every `_bytes` gauge. The `#[ignore]`d golden
//! test pins the medium-tier dataset header; `scripts/verify.sh
//! graph-scale` runs it in release via `--include-ignored`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_obs::Obs;
use vnet_par::ParPool;
use vnet_synth::{VerifiedNetConfig, VerifiedNetwork};

/// A quick generator configuration: big enough to exercise duplicate
/// staging (triadic closure + mutual minting both append to existing
/// lists), small enough for proptest under the debug profile.
fn tiny_config(nodes: u32, mean_out: f64) -> VerifiedNetConfig {
    VerifiedNetConfig {
        nodes,
        mean_out_degree: mean_out,
        celebrity_sinks: 2,
        ..VerifiedNetConfig::small()
    }
}

/// Freeze a seeded society through one of the two builder paths and wrap
/// the result in a manifest, memory gauges included. Everything recorded
/// here except the `_bytes` gauges is a pure function of the seed.
fn manifest_for(net: &VerifiedNetwork, seed: u64) -> vnet_obs::RunManifest {
    let obs = Obs::new();
    obs.set_gauge("graph.synth_peak_arena_bytes", &[], net.stream.peak_arena_bytes as f64);
    obs.set_gauge("graph.synth_csr_bytes", &[], net.stream.csr_bytes as f64);
    obs.set_counter("graph.nodes", &[], net.graph.node_count() as u64);
    obs.set_counter("graph.edges", &[], net.graph.edge_count() as u64);
    let mut m = obs.manifest("graph-scale", seed);
    let mut graph_bytes = Vec::new();
    vnet_graph::io::write_binary(&net.graph, &mut graph_bytes).expect("in-memory serialize");
    m.add_fingerprint("graph.content", vnet_obs::fingerprint_bytes(&graph_bytes));
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The issue's core contract: streaming and Vec-staged freezes of the
    /// same seeded society yield byte-identical deterministic manifests —
    /// identical graph fingerprints, identical counters — even though the
    /// two paths record different memory gauges.
    #[test]
    fn streaming_and_staged_manifests_byte_identical(
        seed in 0u64..1_000,
        nodes in 100u32..400,
    ) {
        let cfg = tiny_config(nodes, 10.0);
        let streaming =
            VerifiedNetwork::generate(&cfg, &mut StdRng::seed_from_u64(seed));
        let staged =
            VerifiedNetwork::generate_staged(&cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&streaming.graph, &staged.graph);
        prop_assert_eq!(&streaming.roles, &staged.roles);
        // Raw accounting differs between the paths...
        prop_assert!(streaming.stream.peak_arena_bytes < staged.stream.peak_arena_bytes);
        // ...but the deterministic manifest view scrubs it away.
        let a = manifest_for(&streaming, seed).deterministic_json();
        let b = manifest_for(&staged, seed).deterministic_json();
        prop_assert_eq!(a, b);
    }

    /// The streaming build's peak stays within the issue's 1.5× budget of
    /// the final CSR at every generated size.
    #[test]
    fn streaming_peak_within_budget(seed in 0u64..1_000, nodes in 100u32..400) {
        let cfg = tiny_config(nodes, 10.0);
        let net = VerifiedNetwork::generate(&cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert!(net.stream.csr_bytes > 0);
        prop_assert!(
            net.stream.peak_arena_bytes as f64 <= 1.5 * net.stream.csr_bytes as f64,
            "peak {} exceeds 1.5x csr {}",
            net.stream.peak_arena_bytes,
            net.stream.csr_bytes
        );
    }
}

/// Dataset fingerprints (and the whole deterministic manifest, memory
/// gauges and all) are identical across thread counts — the streaming
/// build and the bitset BFS kernels feed the same bytes to the hasher no
/// matter how wide the pool is.
#[test]
fn dataset_fingerprint_identical_across_threads() {
    let build = |threads: usize| {
        let obs = Arc::new(Obs::new());
        let ctx = AnalysisCtx::new(ParPool::new(threads), Arc::clone(&obs));
        let ds = Dataset::build(&SynthesisConfig::small(), &ctx);
        let mut m = obs.manifest("scale-threads", 0);
        m.add_fingerprint("dataset.content", ds.fingerprint());
        (ds.fingerprint(), m)
    };
    let (fp1, m1) = build(1);
    let (fp4, m4) = build(4);
    assert_eq!(fp1, fp4, "dataset fingerprint must not depend on thread count");
    assert_eq!(m1.deterministic_json(), m4.deterministic_json());
    // The full (unscrubbed) manifest carries the new memory gauges.
    assert!(m1.gauges.contains_key("graph.synth_peak_arena_bytes"));
    assert!(m1.gauges.contains_key("graph.synth_csr_bytes"));
    assert!(m1.gauges.contains_key("graph.csr_bytes"));
}

/// Golden header of the medium scale tier (`--scale medium`,
/// `SocietyConfig::medium()`): pinned node/edge counts and degree sums, and
/// the memory budget at real size. Ignored by default (tier-1 runs the
/// debug profile); `scripts/verify.sh graph-scale` runs it in release.
#[test]
#[ignore = "medium-scale build (~5M edges); run via scripts/verify.sh graph-scale"]
fn golden_medium_scale_header() {
    let cfg = VerifiedNetConfig::medium();
    let net = VerifiedNetwork::generate(&cfg, &mut StdRng::seed_from_u64(20180718));
    let g = &net.graph;
    assert_eq!(g.node_count(), 60_000);
    // Golden counts for seed 20180718 — a changed generator or builder
    // shows up here first.
    assert_eq!(g.edge_count(), GOLDEN_MEDIUM_EDGES);
    let out_sum: usize = (0..g.node_count() as u32).map(|u| g.out_degree(u)).sum();
    let in_sum: usize = (0..g.node_count() as u32).map(|u| g.in_degree(u)).sum();
    assert_eq!(out_sum, g.edge_count());
    assert_eq!(in_sum, g.edge_count());
    assert_eq!(net.stream.csr_bytes, g.csr_bytes());
    assert!(
        net.stream.peak_arena_bytes as f64 <= 1.5 * net.stream.csr_bytes as f64,
        "peak {} exceeds 1.5x csr {}",
        net.stream.peak_arena_bytes,
        net.stream.csr_bytes
    );
}

/// Pinned by `golden_medium_scale_header`; regenerate with
/// `cargo test -p vnet-integration-tests --release golden_medium -- --include-ignored`
/// after an intentional generator change.
const GOLDEN_MEDIUM_EDGES: usize = 5_165_229;
