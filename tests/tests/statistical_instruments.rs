//! Integration checks of the statistical instruments against each other
//! and against the firehose process: the Section V chain (portmanteau →
//! ADF → PELT) run end-to-end on simulated data with known ground truth,
//! plus the Figure-5 spline machinery on real profile columns.

use verified_net::{Dataset, SynthesisConfig};
use vnet_stats::spline::PenalizedSpline;
use vnet_timeseries::adf::{adf_test, AdfRegression, LagSelection};
use vnet_timeseries::pelt::pelt_consensus;
use vnet_timeseries::portmanteau::{box_pierce, ljung_box};
use vnet_timeseries::seasonal::deseasonalize_weekly;
use vnet_timeseries::Date;

fn dataset() -> Dataset {
    Dataset::build(&SynthesisConfig::small(), &verified_net::AnalysisCtx::quiet())
}

#[test]
fn section5_chain_end_to_end() {
    let ds = dataset();
    let s = &ds.activity;

    // 1. Portmanteau at the weekly horizon: decisive rejection; and the
    //    Ljung-Box correction strictly increases the statistic.
    let lb = ljung_box(s, 14).unwrap();
    let bp = box_pierce(s, 14).unwrap();
    assert!(lb.p_value < 1e-20 && bp.p_value < 1e-20);
    assert!(lb.statistic > bp.statistic);

    // 2. ADF: stationary with constant + trend (paper −3.86 < −3.42).
    let adf = adf_test(s, AdfRegression::ConstantTrend, LagSelection::Fixed(7)).unwrap();
    assert!(adf.statistic < adf.crit_5pct, "adf {}", adf.statistic);

    // 3. PELT on the deseasonalized series finds the two planted events
    //    and dates them correctly through the calendar machinery.
    let deseason = deseasonalize_weekly(s).unwrap();
    let n = s.len() as f64;
    let cons = pelt_consensus(&deseason, 40.0 * n.ln(), 2.5 * n.ln(), 12, 6, 0.5).unwrap();
    let dates: Vec<Date> = cons
        .iter()
        .map(|&(i, _)| ds.activity_start.plus_days(i as i64))
        .collect();
    assert!(
        dates.iter().any(|d| d.year == 2017 && d.month == 12 && (17..=29).contains(&d.day)),
        "no Christmas-window date in {dates:?}"
    );
    assert!(
        dates
            .iter()
            .any(|d| d.year == 2018 && (d.month == 4 || (d.month == 3 && d.day >= 28))),
        "no early-April date in {dates:?}"
    );
}

#[test]
fn portmanteau_sanity_on_shuffled_series() {
    // Destroying temporal order must destroy the autocorrelation signal:
    // shuffle the firehose series deterministically and re-test.
    let ds = dataset();
    let mut s = ds.activity.clone();
    // Deterministic LCG shuffle (no rand needed for reproducibility).
    let mut state: u64 = 0x9E3779B97F4A7C15;
    for i in (1..s.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        s.swap(i, j);
    }
    let lb = ljung_box(&s, 14).unwrap();
    assert!(
        lb.p_value > 1e-4,
        "shuffled series should lose most autocorrelation, p={}",
        lb.p_value
    );
}

#[test]
fn adf_detects_planted_unit_root_in_cumulated_activity() {
    // The cumulative sum of a (stationary) activity series is integrated
    // of order one: ADF must NOT reject on it.
    let ds = dataset();
    let cum: Vec<f64> = ds
        .activity
        .iter()
        .scan(0.0, |acc, &x| {
            *acc += x - 3_000.0; // de-mean-ish so the trend term doesn't absorb everything
            Some(*acc)
        })
        .collect();
    let adf = adf_test(&cum, AdfRegression::ConstantTrend, LagSelection::Fixed(7)).unwrap();
    assert!(
        adf.statistic > adf.crit_1pct,
        "integrated series wrongly rejected at 1%: {}",
        adf.statistic
    );
}

#[test]
fn spline_fits_real_profile_relation() {
    // Figure 5f: followers vs list memberships. The spline on log-log
    // data must produce a broadly increasing curve with finite bands.
    let ds = dataset();
    let pairs: Vec<(f64, f64)> = ds
        .listed()
        .iter()
        .zip(ds.followers())
        .filter(|&(&l, f)| l > 0.0 && f > 0.0)
        .map(|(&l, f)| (l.log10(), f.log10()))
        .collect();
    let x: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
    let y: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
    let s = PenalizedSpline::fit(&x, &y, 10, 1.0).unwrap();
    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let curve = s.curve(lo, hi, 30, 0.95);
    assert!(curve.iter().all(|p| p.fit.is_finite() && p.lo <= p.hi));
    // Broad upward trend over the bulk of the range.
    let mid = curve.len() / 2;
    assert!(
        curve[curve.len() - 5].fit > curve[5].fit,
        "no upward trend: {} -> {}",
        curve[5].fit,
        curve[curve.len() - 5].fit
    );
    let _ = mid;
}
