//! Cross-crate battery for the temporal engine: deterministic churn
//! replay (resume-from-checkpoint ≡ replay-from-day-0, the golden the
//! serve timeline's `as_of` resolution rests on), incremental-vs-scratch
//! fingerprint identity at pinned horizons, and thread-count invariance
//! of every day report — the acceptance criteria of the temporal PR.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vnet_ctx::AnalysisCtx;
use vnet_synth::{ChurnConfig, ChurnStream, VerifiedNetConfig, VerifiedNetwork};
use vnet_temporal::{scratch_replay, EngineConfig, TemporalEngine, Timeline};

/// A churn stream over a 500-node verified network. Seeds are split so
/// the graph and the churn process vary independently.
fn stream(graph_seed: u64, churn_seed: u64) -> ChurnStream {
    let mut cfg = VerifiedNetConfig::small();
    cfg.nodes = 500;
    let mut rng = StdRng::seed_from_u64(graph_seed);
    let net = VerifiedNetwork::generate(&cfg, &mut rng);
    ChurnStream::from_network(&net, ChurnConfig { seed: churn_seed, ..ChurnConfig::default() })
}

#[test]
fn resume_from_checkpoint_replays_identically_to_restart() {
    let mut live = stream(0xA11CE, 31);
    let mut checkpoint = None;
    for _ in 0..4 {
        live.next_day();
    }
    checkpoint.replace(live.checkpoint());
    for _ in 0..6 {
        live.next_day();
    }

    // Path A: resume the day-4 checkpoint and replay 6 more days.
    let mut resumed = ChurnStream::resume(&checkpoint.unwrap()).expect("resume checkpoint");
    assert_eq!(resumed.day(), 4);
    for _ in 0..6 {
        resumed.next_day();
    }

    // Path B: a fresh stream replayed from day 0.
    let mut restarted = stream(0xA11CE, 31);
    for _ in 0..10 {
        restarted.next_day();
    }

    for (label, other) in [("resumed", &resumed), ("restarted", &restarted)] {
        assert_eq!(live.day(), other.day(), "{label}: day drifted");
        assert_eq!(live.edge_count(), other.edge_count(), "{label}: edge count drifted");
        assert_eq!(
            live.snapshot_graph(),
            other.snapshot_graph(),
            "{label}: day-10 graph is not identical"
        );
    }
}

#[test]
fn incremental_analyses_match_scratch_at_pinned_horizons() {
    // Days 1, 7 and 30 pin the three regimes: a single delta batch, one
    // compaction boundary, and a long chain of compactions + warm
    // PageRank restarts. One 30-day engine run covers all three.
    let config = EngineConfig::default();
    let ctx = AnalysisCtx::quiet();
    let mut engine = TemporalEngine::new(stream(0xBEE, 7), config.clone(), &ctx);
    for _ in 0..30 {
        engine.advance_day(&ctx);
    }
    let scratch = scratch_replay(stream(0xBEE, 7), config, 30, &ctx);
    assert_eq!(engine.reports().len(), 31);
    assert_eq!(scratch.len(), 31);
    for day in [1usize, 7, 30] {
        let inc = &engine.reports()[day];
        let scr = &scratch[day];
        assert_eq!(
            inc.canonical(),
            scr.canonical(),
            "day {day}: incremental report diverged from scratch recompute"
        );
        assert_eq!(inc.fingerprint(), scr.fingerprint(), "day {day}: fingerprint drift");
    }
}

#[test]
fn day_reports_are_bit_identical_at_any_thread_count() {
    let config = EngineConfig::default();
    let serial = {
        let ctx = AnalysisCtx::quiet();
        let mut engine = TemporalEngine::new(stream(0xD06, 13), config.clone(), &ctx);
        for _ in 0..8 {
            engine.advance_day(&ctx);
        }
        engine.reports().to_vec()
    };
    for threads in [2usize, 5] {
        let ctx = AnalysisCtx::with_threads(threads);
        let mut engine = TemporalEngine::new(stream(0xD06, 13), config.clone(), &ctx);
        for _ in 0..8 {
            engine.advance_day(&ctx);
        }
        assert_eq!(
            engine.reports(),
            serial.as_slice(),
            "{threads} threads changed a day report bit"
        );
    }
}

#[test]
fn timeline_as_of_equals_engine_state_at_every_day() {
    let ctx = AnalysisCtx::quiet();
    let config = EngineConfig { compact_every: 3, refit_every: 2, pagerank: None };
    let timeline = Timeline::build(stream(0xCAB, 5), config.clone(), 9, 4, &ctx);
    let mut engine = TemporalEngine::new(stream(0xCAB, 5), config, &ctx);
    for day in 0..=9u32 {
        let from_timeline = timeline.graph_as_of(day).expect("day within horizon");
        assert_eq!(
            from_timeline,
            engine.snapshot_graph(),
            "timeline day {day} diverged from the engine's live graph"
        );
        if day < 9 {
            engine.advance_day(&ctx);
        }
    }
    assert!(timeline.graph_as_of(10).is_err(), "beyond-horizon day must refuse");
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Property form of the incremental-vs-scratch identity: any churn
    /// seed and any horizon up to a week produce byte-identical day
    /// reports from the warm engine and the from-scratch replayer.
    #[test]
    fn incremental_equals_scratch_for_any_seed(churn_seed in 0u64..1024, days in 1u32..=7) {
        let config = EngineConfig { compact_every: 2, refit_every: 3, pagerank: None };
        let ctx = AnalysisCtx::quiet();
        let mut engine = TemporalEngine::new(stream(0x5EED, churn_seed), config.clone(), &ctx);
        for _ in 0..days {
            engine.advance_day(&ctx);
        }
        let scratch = scratch_replay(stream(0x5EED, churn_seed), config, days, &ctx);
        proptest::prop_assert_eq!(engine.reports(), scratch.as_slice());
    }
}
