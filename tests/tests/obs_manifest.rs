//! Golden determinism tests for the `vnet-obs` run manifest.
//!
//! The observability layer's contract (see `vnet-obs` crate docs) is that
//! everything in a manifest's *deterministic view* — counters, gauges,
//! histograms, simulated-clock stage timings, fingerprints — is a pure
//! function of the seeded workload. These tests pin that contract across
//! the full crawl pipeline: two same-seed fault-injected syntheses must
//! produce byte-identical manifest JSON. They also pin the API-migration
//! contract: the deprecated `*_observed` shims must leave byte-identical
//! traces to the `AnalysisCtx` entrypoints that replaced them.

use std::sync::Arc;
use verified_net::{AnalysisCtx, AnalysisOptions, Dataset, SynthesisConfig};
use vnet_obs::{Obs, RunManifest};
use vnet_par::ParPool;
use vnet_twittersim::{FaultPlan, RateLimitPolicy};

/// Run a fault-injected synthesis under a fresh `Obs` and return the
/// manifest (label/seed fixed so only the workload can differ).
fn observed_faulty_run(plan_seed: u64) -> (RunManifest, String) {
    let config = SynthesisConfig {
        rate_limits: RateLimitPolicy::default(),
        ..SynthesisConfig::small()
    };
    let plan = FaultPlan::generate(plan_seed);
    let obs = Arc::new(Obs::new());
    let ctx = AnalysisCtx::new(ParPool::serial(), Arc::clone(&obs));
    let ds = Dataset::build_with_faults(&config, &plan, &ctx)
        .expect("healing plan converges");
    let mut manifest = obs.manifest("golden", plan_seed);
    manifest.fingerprint_output("dataset.summary", &ds.summary());
    let json = manifest.deterministic_json();
    (manifest, json)
}

#[test]
fn same_seed_runs_produce_byte_identical_manifest_json() {
    let (_, first) = observed_faulty_run(7);
    let (_, second) = observed_faulty_run(7);
    assert_eq!(first, second, "same-seed manifests must be byte-identical");
}

#[test]
fn different_seed_changes_the_manifest() {
    let (_, a) = observed_faulty_run(7);
    let (_, b) = observed_faulty_run(8);
    assert_ne!(a, b, "a different fault plan must leave a different trace");
}

#[test]
fn manifest_carries_per_endpoint_and_fault_counters() {
    let (manifest, json) = observed_faulty_run(7);

    // Per-endpoint API counters from the instrumented TwitterApi.
    assert!(
        manifest.counters.keys().any(|k| k.starts_with("api.requests{endpoint=")),
        "missing per-endpoint request counters: {:?}",
        manifest.counters.keys().collect::<Vec<_>>()
    );
    let total_requests: u64 = manifest
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("api.requests{"))
        .map(|(_, &v)| v)
        .sum();
    assert!(total_requests > 0, "the crawl must have issued requests");

    // CrawlStats / FaultTally exports.
    for key in ["crawl.roster_size", "crawl.passes", "crawl.simulated_seconds"] {
        assert!(manifest.counters.contains_key(key), "missing {key}");
    }
    assert!(
        manifest.counters.keys().any(|k| k.starts_with("faults.injected{kind=")),
        "missing fault-kind counters"
    );

    // Crawl spans with simulated-clock durations.
    let crawl_stage = manifest
        .stages
        .iter()
        .find(|s| s.name == "crawl.resumable")
        .expect("crawl.resumable span recorded");
    assert!(
        crawl_stage.sim_secs > 0,
        "a rate-limited crawl advances the simulated clock"
    );
    assert!(manifest.stages.iter().any(|s| s.name == "crawl.pass"));

    // The dataset fingerprint made it into the JSON.
    assert!(manifest.fingerprints.contains_key("dataset.summary"));
    assert!(json.contains("dataset.summary"));

    // Deterministic view really strips wall-clock times.
    let det = manifest.deterministic_view();
    assert_eq!(det.wall_total_micros, 0);
    assert!(det.stages.iter().all(|s| s.wall_micros == 0));
}

#[test]
fn analysis_driver_records_one_span_per_stage() {
    let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
    let obs = Arc::new(Obs::new());
    let opts = AnalysisOptions::quick();
    let ctx = AnalysisCtx::new(ParPool::serial(), Arc::clone(&obs));
    let _report = verified_net::run_analysis(&ds, &opts, &ctx);
    let manifest = obs.manifest("analysis", opts.seed);
    for stage in [
        "analysis.basic",
        "analysis.figure1",
        "analysis.degrees",
        "analysis.eigen",
        "analysis.reciprocity",
        "analysis.separation",
        "analysis.bios",
        "analysis.centrality",
        "analysis.activity",
        "analysis.elite_core",
        "analysis.categories",
    ] {
        assert!(
            manifest.stages.iter().any(|s| s.name == stage && s.depth == 0),
            "missing top-level span {stage}"
        );
    }
    // Nested sub-spans sit under their stage.
    for (child, parent) in [
        ("analysis.basic.components", "analysis.basic"),
        ("analysis.centrality.pagerank", "analysis.centrality"),
        ("analysis.activity.pelt", "analysis.activity"),
        ("analysis.eigen.lanczos", "analysis.eigen"),
    ] {
        let c = manifest
            .stages
            .iter()
            .find(|s| s.name == child)
            .unwrap_or_else(|| panic!("missing sub-span {child}"));
        assert_eq!(c.depth, 1, "{child} should nest under {parent}");
    }
    // Hot-loop work counters from algos/spectral.
    for key in [
        "algo.pagerank.iterations",
        "algo.pagerank.edge_relaxations",
        "algo.betweenness.sources",
        "algo.lanczos.matvecs",
    ] {
        assert!(
            manifest.counters.get(key).copied().unwrap_or(0) > 0,
            "counter {key} missing or zero"
        );
    }
}

#[test]
fn observed_and_plain_drivers_agree() {
    // Instrumentation must not perturb results: the observed ctx threads
    // the same RNG streams as the quiet one.
    let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
    let opts = AnalysisOptions::quick();
    let plain = verified_net::run_analysis(&ds, &opts, &AnalysisCtx::quiet());
    let obs = Arc::new(Obs::new());
    let ctx = AnalysisCtx::new(ParPool::serial(), obs);
    let observed = verified_net::run_analysis(&ds, &opts, &ctx);
    let a = serde_json::to_string(&plain).expect("serialize");
    let b = serde_json::to_string(&observed).expect("serialize");
    assert_eq!(a, b, "observed driver changed analysis results");
}

/// API-migration sentinel: the pre-0.2.0 `run_full_analysis_observed` /
/// `Dataset::synthesize_observed` shims were removed with the v1 wire
/// envelope (see the migration table in `docs/API.md`). The ctx
/// entrypoints they forwarded to are golden-tested above; this guard
/// keeps the old names from quietly reappearing in the public API.
#[test]
fn removed_compat_shims_stay_removed() {
    let surface = include_str!("../../crates/core/src/lib.rs");
    for gone in ["run_full_analysis", "synthesize_observed", "compat::"] {
        assert!(
            !surface.contains(&format!("pub use {gone}")) && !surface.contains("pub mod compat"),
            "removed shim surface '{gone}' resurfaced in verified-net"
        );
    }
}
