//! Shard-isolation battery: one hot snapshot must not starve another,
//! and shard-targeted `status`/`metrics` replies are golden.
//!
//! Every registered snapshot owns its own bounded-queue executor, LRU
//! cache, and single-flight map (`crates/serve/src/shards.rs`). The
//! saturation test drives one shard's queue to capacity with slow
//! centrality jobs and proves — via shard-targeted `status` and a live
//! `analyze` — that a second snapshot keeps being admitted and served.
//! The golden tests pin the exact reply bytes for shard-targeted `status`
//! on a quiescent shard and shard-filtered `metrics` after a known
//! request history, across independent servers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_serve::{Server, ServerConfig, ServerHandle};

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet()))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn req(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_string()
    }
}

/// A slow request: high-pivot betweenness keeps a worker busy for long
/// enough that queue occupancy is observable from outside.
fn slow_analyze(snapshot: &str, seed: u64) -> String {
    format!(
        "{{\"cmd\":\"analyze\",\"snapshot\":\"{snapshot}\",\"sections\":[\"centrality\"],\"options\":{{\"seed\":{seed},\"betweenness_pivots\":64}}}}"
    )
}

/// Poll shard-targeted status until `(queued, running)` matches.
fn wait_for_occupancy(c: &mut Client, snapshot: &str, queued: u64, running: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = c.req(&format!("{{\"cmd\":\"status\",\"snapshot\":\"{snapshot}\"}}"));
        let v: serde_json::Value = serde_json::from_str(&status).expect("status parse");
        if v["shard"]["queued"].as_u64() == Some(queued)
            && v["shard"]["running"].as_u64() == Some(running)
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "shard {snapshot} never reached queued={queued} running={running}: {status}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn saturated_hot_shard_does_not_starve_the_cold_shard() {
    // One worker, one queue slot per shard: two slow jobs saturate "hot".
    let handle = Server::start(ServerConfig {
        max_in_flight: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    handle.register_dataset("hot", dataset().clone());
    handle.register_dataset("cold", dataset().clone());
    let addr = handle.local_addr();

    let slow_clients: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                c.req(&slow_analyze("hot", 500 + i))
            })
        })
        .collect();
    let mut c = Client::connect(addr);
    wait_for_occupancy(&mut c, "hot", 1, 1);

    // The hot shard is full: a third request is refused with queue_full …
    let refused = c.req(&slow_analyze("hot", 502));
    let v: serde_json::Value = serde_json::from_str(&refused).expect("refusal parse");
    assert_eq!(v["error"]["code"].as_str(), Some("queue_full"), "hot shard: {refused}");

    // … while the cold shard, saturated-neighbour notwithstanding, admits
    // and serves: this is the isolation property the registry exists for.
    let served = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"cold","sections":["basic"]}"#);
    let v: serde_json::Value = serde_json::from_str(&served).expect("cold parse");
    assert_eq!(v["ok"].as_bool(), Some(true), "cold shard starved: {served}");
    assert_eq!(v["snapshot"].as_str(), Some("cold"));

    // Global status sees both shards and the hot backlog.
    let status = c.req(r#"{"v":1,"cmd":"status"}"#);
    let v: serde_json::Value = serde_json::from_str(&status).expect("status parse");
    assert_eq!(v["snapshots"][0].as_str(), Some("cold"));
    assert_eq!(v["snapshots"][1].as_str(), Some("hot"));
    assert_eq!(v["shards"][0]["snapshot"].as_str(), Some("cold"));

    // The hot shard's metrics carry its refusal under its own label.
    let metrics = c.req(r#"{"v":1,"cmd":"metrics","snapshot":"hot"}"#);
    let v: serde_json::Value = serde_json::from_str(&metrics).expect("metrics parse");
    assert_eq!(
        v["counters"]["serve.rejected{reason=queue_full,shard=hot}"].as_u64(),
        Some(1),
        "metrics: {metrics}"
    );

    for t in slow_clients {
        let reply = t.join().expect("slow client");
        let v: serde_json::Value = serde_json::from_str(&reply).expect("slow reply parse");
        assert_eq!(v["ok"].as_bool(), Some(true), "slow request failed: {reply}");
    }
    handle.shutdown();
    handle.join();
}

fn quiescent_server() -> ServerHandle {
    let handle = Server::start(ServerConfig::default()).expect("bind loopback server");
    handle.register_dataset("snap", dataset().clone());
    handle
}

#[test]
fn shard_targeted_status_is_golden() {
    let expected = format!(
        "{{\"ok\":true,\"shard\":{{\"snapshot\":\"snap\",\"fingerprint\":{},\"workers\":4,\"queued\":0,\"running\":0,\"open_flights\":0,\"cache_entries\":0}},\"shutting_down\":false}}",
        dataset().fingerprint(),
    );
    // Byte-identical across independent servers: the reply is a pure
    // function of the registered dataset and the (quiescent) shard state.
    for _ in 0..2 {
        let handle = quiescent_server();
        let mut c = Client::connect(handle.local_addr());
        assert_eq!(c.req(r#"{"v":1,"cmd":"status","snapshot":"snap"}"#), expected);
        let unknown = c.req(r#"{"v":1,"cmd":"status","snapshot":"ghost"}"#);
        let v: serde_json::Value = serde_json::from_str(&unknown).expect("unknown parse");
        assert_eq!(v["error"]["code"].as_str(), Some("unknown_snapshot"));
        handle.shutdown();
        handle.join();
    }
}

#[test]
fn shard_filtered_metrics_are_golden_after_one_analyze() {
    // Two shards, one request to "a": the shard-filtered metrics view
    // must contain exactly a's labelled series — counters for its one
    // miss and gauges for its settled executor — and nothing of "b".
    let expected = "{\"ok\":true,\"counters\":{\"cache.entries{shard=a}\":1,\"cache.misses{shard=a}\":1,\"serve.requests{shard=a}\":1},\"gauges\":{\"serve.jobs_running{shard=a}\":0.0,\"serve.queue_depth{shard=a}\":0.0}}";
    let run = || {
        let handle = Server::start(ServerConfig::default()).expect("bind loopback server");
        handle.register_dataset("a", dataset().clone());
        handle.register_dataset("b", dataset().clone());
        let mut c = Client::connect(handle.local_addr());
        let served = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"a","sections":["basic"],"options":{"seed":3}}"#);
        assert!(served.starts_with("{\"ok\":true"), "analyze failed: {served}");
        // The worker publishes its reply before settling the running
        // gauge back to zero; poll briefly for the settled snapshot.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let metrics = c.req(r#"{"v":1,"cmd":"metrics","snapshot":"a"}"#);
            if metrics == expected {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "shard-filtered metrics never reached the golden bytes:\n  want {expected}\n  got  {metrics}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Shard b saw no traffic: its filtered view is empty.
        let b = c.req(r#"{"v":1,"cmd":"metrics","snapshot":"b"}"#);
        assert_eq!(b, "{\"ok\":true,\"counters\":{},\"gauges\":{}}", "b leaked series: {b}");
        let unknown = c.req(r#"{"v":1,"cmd":"metrics","snapshot":"ghost"}"#);
        let v: serde_json::Value = serde_json::from_str(&unknown).expect("unknown parse");
        assert_eq!(v["error"]["code"].as_str(), Some("unknown_snapshot"));
        handle.shutdown();
        handle.join();
    };
    // Deterministic across independent servers.
    run();
    run();
}
