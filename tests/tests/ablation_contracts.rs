//! Ablation contracts: each ingredient of the calibrated generator must be
//! responsible for exactly its own paper statistic, and the fingerprint
//! classifier must exploit those differences the way Section VI proposes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use verified_net::{classify_fingerprint, NetworkFingerprint};
use vnet_algos::clustering::average_local_clustering_sampled;
use vnet_algos::components::{attracting_components, strongly_connected_components};
use vnet_algos::reciprocity::reciprocity;
use vnet_synth::{directed_configuration_model, VerifiedNetConfig, VerifiedNetwork};

fn gen(cfg: &VerifiedNetConfig, seed: u64) -> VerifiedNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    VerifiedNetwork::generate(cfg, &mut rng)
}

#[test]
fn reciprocity_ablation_only_kills_reciprocity() {
    let full = gen(&VerifiedNetConfig::small(), 42);
    let ablated = gen(&VerifiedNetConfig::small().without_reciprocity(), 42);

    assert!(reciprocity(&full.graph) > 0.3);
    assert!(reciprocity(&ablated.graph) < 0.05);

    // Connectivity survives the ablation.
    let scc_full = strongly_connected_components(&full.graph).giant_fraction();
    let scc_abl = strongly_connected_components(&ablated.graph).giant_fraction();
    assert!(scc_abl > 0.85, "ablation broke the giant SCC: {scc_abl} (full {scc_full})");
}

#[test]
fn closure_ablation_only_kills_clustering() {
    let mut rng = StdRng::seed_from_u64(7);
    let full = gen(&VerifiedNetConfig::small(), 7);
    let ablated = gen(&VerifiedNetConfig::small().without_triadic_closure(), 7);
    let c_full = average_local_clustering_sampled(&full.graph, 1_200, &mut rng);
    let c_abl = average_local_clustering_sampled(&ablated.graph, 1_200, &mut rng);
    assert!(
        c_abl < 0.75 * c_full,
        "closure off should cut clustering markedly: {c_abl} vs {c_full}"
    );
    // Reciprocity untouched.
    assert!((reciprocity(&full.graph) - reciprocity(&ablated.graph)).abs() < 0.05);
}

#[test]
fn sink_ablation_removes_nontrivial_attractors_only() {
    let full = gen(&VerifiedNetConfig::small(), 9);
    let ablated = gen(&VerifiedNetConfig::small().without_sinks(), 9);

    let nontrivial = |net: &VerifiedNetwork| {
        attracting_components(&net.graph)
            .iter()
            .filter(|c| c.members.iter().any(|&v| !net.graph.is_isolated(v)))
            .count()
    };
    assert!(nontrivial(&full) >= 3, "expected celebrity sinks: {}", nontrivial(&full));
    assert!(nontrivial(&ablated) <= 1, "sinks should vanish: {}", nontrivial(&ablated));
}

#[test]
fn fingerprint_separates_model_from_degree_matched_null() {
    // The sternest test of Section VI's idea: a configuration-model twin
    // with identical degree sequences must be told apart.
    let mut rng = StdRng::seed_from_u64(13);
    let net = gen(&VerifiedNetConfig::small(), 13);
    let twin = directed_configuration_model(
        &net.graph.out_degrees(),
        &net.graph.in_degrees(),
        &mut rng,
    );
    let fp_real = NetworkFingerprint::measure(&net.graph, 60, &mut rng);
    let fp_twin = NetworkFingerprint::measure(&twin, 60, &mut rng);
    assert!(classify_fingerprint(&fp_real), "real fingerprint rejected: {fp_real:?}");
    assert!(!classify_fingerprint(&fp_twin), "degree twin accepted: {fp_twin:?}");
    // And the separating feature is reciprocity, exactly as documented.
    assert!(fp_real.reciprocity > 0.3);
    assert!(fp_twin.reciprocity < 0.1);
}

#[test]
fn ablated_networks_lose_the_fingerprint() {
    let mut rng = StdRng::seed_from_u64(17);
    let ablated = gen(&VerifiedNetConfig::small().without_reciprocity(), 17);
    let fp = NetworkFingerprint::measure(&ablated.graph, 60, &mut rng);
    assert!(
        !classify_fingerprint(&fp),
        "reciprocity-ablated network should fail classification: {fp:?}"
    );
}
