//! Telemetry-layer battery: merge determinism across thread counts, the
//! Prometheus wire exposition, the `watch` delta stream, and PELT
//! self-monitoring.
//!
//! The sharded [`Telemetry`] slab's contract (see `vnet-obs` crate docs)
//! is that the stripe count and the thread-to-stripe interleaving are
//! invisible after the merge: counters and histogram cells are integer
//! sums, so any partition of the same samples over any number of
//! recording threads folds to byte-identical registry snapshots. The
//! proptest here sweeps 1/2/4/7 recorder threads over generated
//! workloads and demands bit equality of the rendered exposition. The
//! wire tests pin the `metrics?format=prom` body bytes for a quiescent
//! seeded server, stream a `watch` session end to end, and replay a
//! synthetic queue-depth regime shift through the self-monitor's
//! injection hook to prove the PELT detector flags it in `status`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_obs::{pow2_buckets, render_prometheus, Obs, Registry, Telemetry};
use vnet_serve::{AdmissionPolicy, MonitorSample, SelfMonitorConfig, Server, ServerConfig};

/// The thread counts every merge compares: serial, even splits, and a
/// prime that never divides the op counts evenly.
const SWEEP: [usize; 4] = [1, 2, 4, 7];

/// One generated recording op. Gauge values are a function of the key
/// alone: a gauge is a last-write-wins slot, so only workloads where
/// every write to a key carries the same value have a thread-order-free
/// final state — counters and histograms carry the associativity
/// burden.
#[derive(Debug, Clone, Copy)]
enum TelemetryOp {
    Add { key: usize, by: u64 },
    SetGauge { key: usize },
    Observe { key: usize, value: u64 },
}

fn op_strategy() -> impl Strategy<Value = TelemetryOp> {
    prop_oneof![
        (0usize..4, 0u64..1_000).prop_map(|(key, by)| TelemetryOp::Add { key, by }),
        (0usize..3).prop_map(|key| TelemetryOp::SetGauge { key }),
        (0usize..3, 0u64..10_000_000)
            .prop_map(|(key, value)| TelemetryOp::Observe { key, value }),
    ]
}

/// Apply `ops` over `threads` recorder threads (round-robin partition)
/// and return the merged registry rendered as Prometheus text — one
/// canonical byte string covering counters, gauges, and every histogram
/// cell.
fn record_and_render(ops: &[TelemetryOp], threads: usize) -> String {
    let telemetry = Arc::new(Telemetry::new(threads));
    let counters: Vec<_> = (0..4)
        .map(|i| telemetry.counter("t.counter", &[("k", &format!("c{i}"))]))
        .collect();
    let gauges: Vec<_> =
        (0..3).map(|i| telemetry.gauge("t.gauge", &[("k", &format!("g{i}"))])).collect();
    let histograms: Vec<_> = (0..3)
        .map(|i| telemetry.histogram("t.hist", &[("k", &format!("h{i}"))], &pow2_buckets(20)))
        .collect();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let telemetry = Arc::clone(&telemetry);
            let counters = counters.clone();
            let gauges = gauges.clone();
            let histograms = histograms.clone();
            let ops: Vec<TelemetryOp> =
                ops.iter().copied().skip(t).step_by(threads).collect();
            std::thread::spawn(move || {
                for op in ops {
                    match op {
                        TelemetryOp::Add { key, by } => telemetry.add(counters[key], by),
                        TelemetryOp::SetGauge { key } => {
                            telemetry.set_gauge(gauges[key], 10.0 + key as f64)
                        }
                        TelemetryOp::Observe { key, value } => {
                            telemetry.observe(&histograms[key], value)
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("recorder thread");
    }
    let registry = Registry::new();
    telemetry.merge_into(&registry);
    render_prometheus(&registry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any partition of the same samples over 1/2/4/7 recorder threads
    /// merges to byte-identical snapshots.
    #[test]
    fn merged_snapshots_are_thread_count_invariant(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let reference = record_and_render(&ops, SWEEP[0]);
        prop_assert!(!reference.is_empty(), "workload rendered an empty exposition");
        for &threads in &SWEEP[1..] {
            let rendered = record_and_render(&ops, threads);
            prop_assert_eq!(
                &rendered,
                &reference,
                "telemetry merge diverged between 1 and {} recorder threads",
                threads
            );
        }
    }
}

// ---------------------------------------------------------------------
// Wire tests against a seeded in-process server.
// ---------------------------------------------------------------------

fn dataset() -> Dataset {
    Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet())
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_string()
    }

    fn req(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

/// Block until `serve.conn_active` reaches `want` — the gauge is set by
/// the acceptor just after the connection thread spawns, so a test that
/// wants a byte-deterministic exposition waits for it before sending.
fn wait_for_conn_active(obs: &Obs, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while obs.metrics().gauge("serve.conn_active", &[]).unwrap_or(-1.0) != want {
        assert!(Instant::now() < deadline, "serve.conn_active never reached {want}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn prometheus_exposition_is_golden_for_a_quiescent_server() {
    // A (never-binding) admission policy so the `admission` stage runs
    // and all five stage histograms show up in the exposition.
    let handle = Server::start(ServerConfig {
        admission: Some(AdmissionPolicy { requests: 100, window_millis: 60_000 }),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    handle.register_dataset("snap", dataset());
    let obs = handle.obs_handle();
    let mut c = Client::connect(handle.local_addr());
    wait_for_conn_active(&obs, 1.0);

    // The very first request on the only connection: the `framing` and
    // `write` stage samples for a reply are recorded only after that
    // reply is flushed, so this exposition cannot contain samples from
    // its own request — which is what makes its bytes pinnable.
    let reply = c.req(r#"{"v":1,"cmd":"metrics","format":"prom"}"#);
    let v: serde_json::Value = serde_json::from_str(&reply).expect("prom reply parses");
    assert_eq!(v["ok"].as_bool(), Some(true), "reply: {reply}");
    assert_eq!(v["format"].as_str(), Some("prom"));
    let body = v["body"].as_str().expect("body is a string");
    let expected = "\
# TYPE serve_conn_opened counter\n\
serve_conn_opened 1\n\
# TYPE serve_snapshots counter\n\
serve_snapshots 1\n\
# TYPE serve_conn_active gauge\n\
serve_conn_active 1\n";
    assert_eq!(body, expected, "prom body drifted:\n{body}");

    // The shard-filtered exposition of an idle shard is empty: every
    // shard-labelled series is registered but untouched, and untouched
    // telemetry never materializes keys.
    let reply = c.req(r#"{"v":1,"cmd":"metrics","snapshot":"snap","format":"prom"}"#);
    let v: serde_json::Value = serde_json::from_str(&reply).expect("shard prom parses");
    assert_eq!(v["body"].as_str(), Some(""), "idle shard exposition not empty: {reply}");

    // After one analyze, the global exposition carries the staged
    // latency histograms with consistent cumulative counts.
    let analyze = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["basic"]}"#);
    assert!(analyze.starts_with("{\"ok\":true"), "analyze failed: {analyze}");
    let reply = c.req(r#"{"v":1,"cmd":"metrics","format":"prom"}"#);
    let v: serde_json::Value = serde_json::from_str(&reply).expect("prom reply parses");
    let body = v["body"].as_str().expect("body is a string");
    for stage in ["admission", "queue", "execute"] {
        let count_line = format!("serve_stage_wall_micros_count{{stage=\"{stage}\"}} 1");
        assert!(
            body.contains(&count_line),
            "missing `{count_line}` in exposition:\n{body}"
        );
    }
    // Three replies (both earlier metrics scrapes plus the analyze) have
    // been flushed by now, so framing/write carry exactly three samples
    // each, and every histogram ends with the catch-all +Inf bucket
    // equal to its count.
    for stage in ["framing", "write"] {
        let count_line = format!("serve_stage_wall_micros_count{{stage=\"{stage}\"}} 3");
        assert!(
            body.contains(&count_line),
            "missing `{count_line}` in exposition:\n{body}"
        );
        let inf_line = format!("serve_stage_wall_micros_bucket{{stage=\"{stage}\",le=\"+Inf\"}} 3");
        assert!(body.contains(&inf_line), "missing `{inf_line}` in exposition:\n{body}");
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn watch_streams_at_least_three_delta_frames() {
    let handle = Server::start(ServerConfig::default()).expect("bind loopback server");
    handle.register_dataset("snap", dataset());
    let addr = handle.local_addr();

    let mut watcher = Client::connect(addr);
    watcher.send(r#"{"v":1,"cmd":"watch","interval_ms":60,"frames":3}"#);
    let ack = watcher.recv();
    let v: serde_json::Value = serde_json::from_str(&ack).expect("watch ack parses");
    assert_eq!(v["watching"]["interval_ms"].as_u64(), Some(60), "ack: {ack}");
    assert_eq!(v["watching"]["frames"].as_u64(), Some(3));

    // Traffic on a second connection while the watch streams: the delta
    // frames must pick the counter movement up.
    let driver = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        for _ in 0..4 {
            let reply = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["basic"]}"#);
            assert!(reply.starts_with("{\"ok\":true"), "driver analyze failed: {reply}");
            std::thread::sleep(Duration::from_millis(40));
        }
    });

    let mut saw_requests_delta = false;
    for i in 1..=3u64 {
        let frame = watcher.recv();
        let v: serde_json::Value = serde_json::from_str(&frame).expect("frame parses");
        assert_eq!(v["watch"].as_u64(), Some(i), "frame {i}: {frame}");
        assert!(v["elapsed_ms"].as_u64().is_some(), "frame {i} missing elapsed_ms");
        if v["counters"]["serve.requests"].as_u64().unwrap_or(0) > 0 {
            saw_requests_delta = true;
        }
    }
    let done = watcher.recv();
    let v: serde_json::Value = serde_json::from_str(&done).expect("terminator parses");
    assert_eq!(v["watch_complete"].as_u64(), Some(3), "terminator: {done}");
    assert!(saw_requests_delta, "no frame carried a serve.requests delta");

    // The session ends cleanly: the same connection keeps serving.
    let status = watcher.req(r#"{"v":1,"cmd":"status"}"#);
    assert!(status.starts_with("{\"ok\":true"), "post-watch status failed: {status}");
    driver.join().expect("driver");
    handle.shutdown();
    handle.join();
}

#[test]
fn watch_rejects_unknown_snapshots_and_bad_bounds() {
    let handle = Server::start(ServerConfig::default()).expect("bind loopback server");
    let mut c = Client::connect(handle.local_addr());
    let reply = c.req(r#"{"v":1,"cmd":"watch","snapshot":"ghost","frames":1}"#);
    let v: serde_json::Value = serde_json::from_str(&reply).expect("reply parses");
    assert_eq!(v["error"]["code"].as_str(), Some("unknown_snapshot"), "{reply}");
    let reply = c.req(r#"{"v":1,"cmd":"watch","interval_ms":3}"#);
    let v: serde_json::Value = serde_json::from_str(&reply).expect("reply parses");
    assert_eq!(v["error"]["code"].as_str(), Some("bad_request"), "{reply}");
    handle.shutdown();
    handle.join();
}

#[test]
fn self_monitor_flags_an_injected_queue_regime_shift() {
    // An interval far past the test's lifetime: the sampler thread
    // idles and every sample comes from the injection hook, so the ring
    // contents — and the PELT verdict over them — are exact.
    let handle = Server::start(ServerConfig {
        self_monitor: Some(SelfMonitorConfig {
            interval_millis: 3_600_000,
            ..SelfMonitorConfig::default()
        }),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let quiet = MonitorSample {
        queue_depth: 0.0,
        running: 1.0,
        cache_hit_rate: 0.9,
        conn_active: 2.0,
    };
    let backed_up = MonitorSample { queue_depth: 8.0, ..quiet };
    for _ in 0..30 {
        assert!(handle.inject_monitor_sample(quiet), "monitor not attached");
    }
    for _ in 0..30 {
        assert!(handle.inject_monitor_sample(backed_up));
    }

    let mut c = Client::connect(handle.local_addr());
    let status = c.req(r#"{"v":1,"cmd":"status"}"#);
    let v: serde_json::Value = serde_json::from_str(&status).expect("status parses");
    assert_eq!(v["self_monitor"]["samples"].as_u64(), Some(60), "status: {status}");
    let alert = &v["self_monitor"]["alerts"][0];
    assert_eq!(alert["series"].as_str(), Some("queue_depth"), "status: {status}");
    assert_eq!(alert["index"].as_u64(), Some(30));
    assert_eq!(alert["before_mean"].as_f64(), Some(0.0));
    assert_eq!(alert["after_mean"].as_f64(), Some(8.0));
    assert!(
        v["self_monitor"]["alerts"][1].is_null(),
        "expected exactly one regime shift: {status}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn status_without_monitor_carries_no_self_monitor_field() {
    let handle = Server::start(ServerConfig::default()).expect("bind loopback server");
    let mut c = Client::connect(handle.local_addr());
    let status = c.req(r#"{"v":1,"cmd":"status"}"#);
    assert!(!status.contains("self_monitor"), "monitor-off status leaked the field: {status}");
    assert!(!handle.inject_monitor_sample(MonitorSample {
        queue_depth: 0.0,
        running: 0.0,
        cache_hit_rate: 0.0,
        conn_active: 0.0,
    }));
    handle.shutdown();
    handle.join();
}
