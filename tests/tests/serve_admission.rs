//! Admission-control conformance and golden-frame battery.
//!
//! The serving-side token bucket ([`vnet_serve::RateWindow`]) claims to
//! mirror `twittersim`'s rate-limit window accounting exactly: a fixed
//! window anchored at the first charged call, lazy reset at
//! `now >= window_start + window_len`, rejections that consume no quota,
//! and a retry hint of `window_start + window_len - now`. The property
//! tests here drive **both implementations over the same seeded
//! schedule** — the simulated API through real `verified_ids` calls on an
//! advancing [`SimClock`], the serve window through pure charges — and
//! require identical accept/reject decisions and identical retry hints at
//! every step. The golden tests then pin the wire artifact: the exact
//! `rate_limited` reply bytes, with `retry_after_ms` made deterministic by
//! the server's manual admission clock.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use proptest::prelude::*;
use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_serve::{AdmissionClock, AdmissionPolicy, RateWindow, Server, ServerConfig};
use vnet_twittersim::{ApiError, RateLimitPolicy, SimClock, Society, SocietyConfig, TwitterApi};

/// A tiny society shared by every conformance case (admission accounting
/// is independent of the society; only the clock and quota matter).
fn society() -> &'static Society {
    static SOC: OnceLock<Society> = OnceLock::new();
    SOC.get_or_init(|| {
        let mut cfg = SocietyConfig::small();
        cfg.net.nodes = 120;
        cfg.net.mean_out_degree = 6.0;
        cfg.seed = 0xAD;
        Society::generate(&cfg)
    })
}

/// One small dataset shared by the golden wire tests.
fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet()))
}

/// What one charge attempt did, in either implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Admitted,
    Rejected { retry_after: u64 },
}

/// Drive the simulated API's roster endpoint over `advances`, recording
/// each call's outcome. The clock advances *before* each call, so the
/// first charge lands at `advances[0]` — matching how the serve window is
/// driven below.
fn twittersim_steps(quota: u32, window: u64, advances: &[u64]) -> Vec<Step> {
    let clock = SimClock::new();
    let policy = RateLimitPolicy {
        roster: quota,
        window_secs: window,
        ..RateLimitPolicy::unlimited()
    };
    let api = TwitterApi::new(society(), clock.clone(), policy, 0.0);
    advances
        .iter()
        .map(|&dt| {
            clock.advance(dt);
            match api.verified_ids(1) {
                Ok(_) => Step::Admitted,
                Err(ApiError::RateLimited { retry_after }) => Step::Rejected { retry_after },
                Err(other) => panic!("unexpected API error: {other:?}"),
            }
        })
        .collect()
}

/// Drive the serve-side window over the same schedule. Like twittersim,
/// the bucket is created at the first charge's clock reading.
fn serve_steps(quota: u32, window: u64, advances: &[u64]) -> Vec<Step> {
    let mut now = 0u64;
    let mut bucket: Option<RateWindow> = None;
    advances
        .iter()
        .map(|&dt| {
            now += dt;
            let w = bucket.get_or_insert_with(|| RateWindow::begin(now));
            match w.charge(now, quota, window) {
                Ok(()) => Step::Admitted,
                Err(retry_after) => Step::Rejected { retry_after },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// THE conformance property: for any quota, window length, and seeded
    /// advance schedule, the serve-side token bucket and the simulated
    /// API agree call by call — same admissions, same rejections, same
    /// retry hints.
    #[test]
    fn serve_window_matches_twittersim_call_for_call(
        quota in 0u32..6,
        window in 1u64..1_200,
        advances in proptest::collection::vec(0u64..700, 1..60),
    ) {
        let api = twittersim_steps(quota, window, &advances);
        let serve = serve_steps(quota, window, &advances);
        prop_assert_eq!(api, serve, "quota={} window={}", quota, window);
    }

    /// Rejections never consume quota: however many over-quota calls land
    /// inside one window, the next window admits exactly `quota` again.
    #[test]
    fn rejections_consume_no_quota(
        quota in 1u32..5,
        burst in 1usize..40,
    ) {
        let window = 100u64;
        let mut w = RateWindow::begin(0);
        for _ in 0..quota {
            prop_assert_eq!(w.charge(0, quota, window), Ok(()));
        }
        for _ in 0..burst {
            prop_assert_eq!(w.charge(0, quota, window), Err(window));
        }
        // The whole burst was turned away without touching the bucket.
        prop_assert_eq!(w.used(), quota);
        for _ in 0..quota {
            prop_assert_eq!(w.charge(window, quota, window), Ok(()));
        }
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn req(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_string()
    }
}

/// Run the golden request sequence against a freshly started server with
/// a manual admission clock: admit one, reject at t=0, reject at t=300,
/// admit at the window boundary. Returns the two rejection frames.
fn golden_sequence() -> (String, String) {
    let clock = AdmissionClock::manual();
    let handle = Server::start(ServerConfig {
        admission: Some(AdmissionPolicy { requests: 1, window_millis: 1_000 }),
        admission_clock: clock.clone(),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    handle.register_dataset("snap", dataset().clone());
    let mut c = Client::connect(handle.local_addr());
    let analyze = r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["basic"],"client":"tenant-1"}"#;

    let first = c.req(analyze);
    assert!(first.starts_with("{\"ok\":true"), "first request must be admitted: {first}");

    let rejected_full = c.req(analyze);
    clock.advance(300);
    let rejected_mid = c.req(analyze);

    // Another identity has its own bucket: still admitted mid-window.
    let other = c.req(
        r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["basic"],"client":"tenant-2"}"#,
    );
    assert!(other.starts_with("{\"ok\":true"), "other client must be admitted: {other}");

    // At exactly window_start + window the bucket reopens.
    clock.advance(700);
    let reopened = c.req(analyze);
    assert!(reopened.starts_with("{\"ok\":true"), "window must reopen: {reopened}");

    handle.shutdown();
    handle.join();
    (rejected_full, rejected_mid)
}

#[test]
fn rate_limited_wire_frames_are_golden() {
    let (rejected_full, rejected_mid) = golden_sequence();
    // Byte-exact frames: the manual clock makes retry_after_ms a pure
    // function of the request sequence.
    assert_eq!(
        rejected_full,
        "{\"ok\":false,\"error\":{\"code\":\"rate_limited\",\"message\":\"rate limited; retry after 1000 ms\",\"retry_after_ms\":1000}}"
    );
    assert_eq!(
        rejected_mid,
        "{\"ok\":false,\"error\":{\"code\":\"rate_limited\",\"message\":\"rate limited; retry after 700 ms\",\"retry_after_ms\":700}}"
    );
}

#[test]
fn golden_sequence_is_deterministic_across_servers() {
    // Two independent servers, same manual-clock schedule: identical
    // rejection bytes — the contract that lets clients test their backoff
    // logic against recorded frames.
    assert_eq!(golden_sequence(), golden_sequence());
}

#[test]
fn admission_metrics_account_for_every_analyze() {
    let clock = AdmissionClock::manual();
    let handle = Server::start(ServerConfig {
        admission: Some(AdmissionPolicy { requests: 2, window_millis: 500 }),
        admission_clock: clock,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    handle.register_dataset("snap", dataset().clone());
    let mut c = Client::connect(handle.local_addr());
    let analyze = r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["basic"],"client":"t"}"#;
    for _ in 0..5 {
        c.req(analyze);
    }
    let metrics = c.req(r#"{"v":1,"cmd":"metrics"}"#);
    let v: serde_json::Value = serde_json::from_str(&metrics).expect("metrics parse");
    assert_eq!(v["counters"]["serve.admitted"].as_u64(), Some(2), "metrics: {metrics}");
    assert_eq!(
        v["counters"]["serve.rejected{reason=rate_limited}"].as_u64(),
        Some(3),
        "metrics: {metrics}"
    );
    // The status report exposes how many admission buckets exist.
    let status = c.req(r#"{"v":1,"cmd":"status"}"#);
    let v: serde_json::Value = serde_json::from_str(&status).expect("status parse");
    assert_eq!(v["admission_clients"].as_u64(), Some(1), "status: {status}");
    handle.shutdown();
    handle.join();
}
