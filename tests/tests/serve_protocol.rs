//! Loopback battery for the `vnet-serve` wire protocol: register/analyze
//! round-trips, cache-hit byte-identity (the acceptance criterion of the
//! service design — a cached reply must be bit-identical to a cold
//! computation, proven by the `cache.hits`/`cache.misses` counters),
//! malformed-request and backpressure replies, per-request timeouts, and
//! graceful-shutdown draining.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use verified_net::{AnalysisCtx, Dataset, SynthesisConfig};
use vnet_serve::{Server, ServerConfig};

/// One small dataset shared by every test in this file (synthesis is the
/// expensive part; registration clones are cheap by comparison).
fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet()))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client { reader: BufReader::new(stream.try_clone().expect("clone stream")), writer: stream }
    }

    /// Send one request line and read the one reply line.
    fn req(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        assert!(reply.ends_with('\n'), "reply not line-terminated: {reply:?}");
        reply.trim_end().to_string()
    }
}

fn start(config: ServerConfig) -> vnet_serve::ServerHandle {
    Server::start(config).expect("bind loopback server")
}

fn counter(metrics_reply: &str, name: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(metrics_reply).expect("metrics parse");
    v["counters"][name].as_u64().unwrap_or(0)
}

#[test]
fn register_analyze_and_cache_hit_round_trip() {
    let handle = start(ServerConfig::default());
    let fp = handle.register_dataset("snap", dataset().clone());
    let mut c = Client::connect(handle.local_addr());

    // Status sees the snapshot.
    let status = c.req(r#"{"v":1,"cmd":"status"}"#);
    let v: serde_json::Value = serde_json::from_str(&status).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true));
    assert_eq!(v["snapshots"][0].as_str(), Some("snap"));

    let analyze =
        r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["reciprocity","separation"],"options":{"seed":99}}"#;
    let cold = c.req(analyze);
    let v: serde_json::Value = serde_json::from_str(&cold).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true));
    assert_eq!(v["dataset_fingerprint"].as_u64(), Some(fp));
    assert_eq!(v["sections"][0]["section"].as_str(), Some("reciprocity"));
    assert!(v["sections"][1]["payload"]["mean"].as_f64().unwrap() > 0.0);

    // The repeat query is served from cache and must be BYTE-identical.
    let warm = c.req(analyze);
    assert_eq!(cold, warm, "cached reply diverged from cold computation");

    // A different thread count is the same cache key: options fingerprints
    // exclude `threads` because results are thread-count invariant.
    let threaded = c.req(
        r#"{"v":1,"cmd":"analyze","snapshot":"snap","sections":["reciprocity","separation"],"options":{"seed":99,"threads":4}}"#,
    );
    assert_eq!(cold, threaded, "thread count leaked into the reply");

    // Counters prove the cache did the work: 2 cold misses, then 4 hits.
    let metrics = c.req(r#"{"v":1,"cmd":"metrics"}"#);
    assert_eq!(counter(&metrics, "cache.misses"), 2, "metrics: {metrics}");
    assert_eq!(counter(&metrics, "cache.hits"), 4, "metrics: {metrics}");
    assert_eq!(counter(&metrics, "cache.entries"), 2, "metrics: {metrics}");

    handle.shutdown();
    handle.join();
}

#[test]
fn register_over_the_wire_from_a_saved_bundle() {
    let dir = std::env::temp_dir().join(format!("vnet_serve_bundle_{}", std::process::id()));
    verified_net::save_dataset(dataset(), &dir).expect("save bundle");

    let handle = start(ServerConfig::default());
    let mut c = Client::connect(handle.local_addr());
    let reply = c.req(&format!(
        r#"{{"v":1,"cmd":"register","name":"wire","dir":{}}}"#,
        serde_json::to_string(&dir.display().to_string()).unwrap()
    ));
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true), "register failed: {reply}");
    // A loaded bundle is content-identical to its source dataset.
    assert_eq!(v["fingerprint"].as_u64(), Some(dataset().fingerprint()));
    assert_eq!(v["users"].as_u64(), Some(dataset().summary().users as u64));

    let analyzed = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"wire","sections":["basic"]}"#);
    let v: serde_json::Value = serde_json::from_str(&analyzed).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true));
    assert!(v["sections"][0]["payload"]["users"].as_u64().unwrap() > 2_000);

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_replies_match_across_independent_servers() {
    // Two fresh servers, no shared cache: the reply is a pure function of
    // (dataset, options, sections), so both cold computations agree.
    let analyze = r#"{"v":1,"cmd":"analyze","snapshot":"s","sections":["basic"],"options":{"seed":5}}"#;
    let replies: Vec<String> = (0..2)
        .map(|_| {
            let handle = start(ServerConfig::default());
            handle.register_dataset("s", dataset().clone());
            let mut c = Client::connect(handle.local_addr());
            let reply = c.req(analyze);
            handle.shutdown();
            handle.join();
            reply
        })
        .collect();
    assert_eq!(replies[0], replies[1], "independent cold computations diverged");
}

#[test]
fn malformed_requests_get_structured_errors() {
    let handle = start(ServerConfig::default());
    let mut c = Client::connect(handle.local_addr());
    for (line, code) in [
        ("this is not json", "bad_request"),
        (r#"{"v":1,"cmd":"dance"}"#, "bad_request"),
        (r#"{"v":1,"cmd":"register","name":"x"}"#, "bad_request"),
        (r#"{"v":1,"cmd":"analyze","snapshot":"x","sections":["nope"]}"#, "unknown_section"),
        (r#"{"v":1,"cmd":"analyze","snapshot":"ghost","sections":["basic"]}"#, "unknown_snapshot"),
    ] {
        let reply = c.req(line);
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false), "line {line} gave {reply}");
        assert_eq!(v["error"]["code"].as_str(), Some(code), "line {line} gave {reply}");
        assert!(!v["error"]["message"].as_str().unwrap_or("").is_empty());
    }
    // The connection survives every error: a good request still works.
    let status = c.req(r#"{"v":1,"cmd":"status"}"#);
    assert!(status.contains("\"ok\":true"));
    handle.shutdown();
    handle.join();
}

#[test]
fn queue_full_backpressure_reply() {
    // max_in_flight = 0: every analyze is refused with a structured
    // queue_full error instead of queueing unboundedly.
    let config = ServerConfig { max_in_flight: 0, ..ServerConfig::default() };
    let handle = start(config);
    handle.register_dataset("s", dataset().clone());
    let mut c = Client::connect(handle.local_addr());
    let reply = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"s","sections":["basic"]}"#);
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(false));
    assert_eq!(v["error"]["code"].as_str(), Some("queue_full"));
    handle.shutdown();
    handle.join();
}

#[test]
fn per_request_timeout_reply() {
    // A 1 ms budget cannot cover a centrality run: the client gets a
    // structured timeout while the worker finishes in the background
    // (shutdown below still drains it).
    let config = ServerConfig { request_timeout_millis: 1, ..ServerConfig::default() };
    let handle = start(config);
    handle.register_dataset("s", dataset().clone());
    let mut c = Client::connect(handle.local_addr());
    let reply = c.req(r#"{"v":1,"cmd":"analyze","snapshot":"s","sections":["centrality"]}"#);
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(false));
    assert_eq!(v["error"]["code"].as_str(), Some("timeout"));
    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let handle = start(ServerConfig::default());
    handle.register_dataset("s", dataset().clone());
    let addr = handle.local_addr();

    // Client A starts a slow analyze; client B asks for shutdown while A
    // is still in flight. A must still get its full reply.
    let worker = std::thread::spawn(move || {
        let mut a = Client::connect(addr);
        a.req(r#"{"v":1,"cmd":"analyze","snapshot":"s","sections":["centrality"],"options":{"seed":3}}"#)
    });
    // Give A a moment to be admitted before requesting shutdown.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let mut b = Client::connect(addr);
    let shutdown_reply = b.req(r#"{"v":1,"cmd":"shutdown"}"#);
    let v: serde_json::Value = serde_json::from_str(&shutdown_reply).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true));
    assert_eq!(v["drained"].as_bool(), Some(true));

    let a_reply = worker.join().expect("client A thread");
    let v: serde_json::Value = serde_json::from_str(&a_reply).unwrap();
    assert_eq!(
        v["ok"].as_bool(),
        Some(true),
        "in-flight request was dropped by shutdown: {a_reply}"
    );
    assert_eq!(v["sections"][0]["section"].as_str(), Some("centrality"));

    handle.join();

    // After shutdown, the listener is gone: new connections fail.
    assert!(TcpStream::connect(addr).is_err(), "server still accepting after shutdown");
}
