//! Cross-crate validation of the §IV-B inference chain: the generator's
//! configured exponents must be recovered by the fitter through the whole
//! pipeline (generator → graph → degree sequence → MLE), and the spectral
//! tail must track the degree tail.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vnet_powerlaw::{fit_continuous, fit_discrete, FitOptions, XminStrategy};
use vnet_spectral::{lanczos_topk, SymLaplacian};
use vnet_stats::sampling::DiscretePowerLaw;
use vnet_synth::{VerifiedNetConfig, VerifiedNetwork};

fn opts() -> FitOptions {
    FitOptions { xmin: XminStrategy::Quantiles(40), min_tail: 30 }
}

#[test]
fn generator_exponent_recovered_through_graph_pipeline() {
    for (seed, alpha_in) in [(1u64, 2.8f64), (2, 3.24), (3, 3.8)] {
        let cfg = VerifiedNetConfig { out_tail_alpha: alpha_in, ..VerifiedNetConfig::small() };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = VerifiedNetwork::generate(&cfg, &mut rng);
        let degrees: Vec<u64> =
            net.graph.out_degrees().into_iter().filter(|&d| d > 0).collect();
        let fit = fit_discrete(&degrees, &opts()).unwrap();
        // The KS scan fits the mixture's tail; allow generous slack since
        // the bulk contaminates the crossover region.
        assert!(
            (fit.alpha - alpha_in).abs() < 0.8,
            "alpha in {alpha_in}, out {} (seed {seed})",
            fit.alpha
        );
    }
}

#[test]
fn spectral_tail_tracks_degree_tail() {
    let mut rng = StdRng::seed_from_u64(11);
    let net = VerifiedNetwork::generate(&VerifiedNetConfig::small(), &mut rng);
    // Top Laplacian eigenvalues of a graph sit within [d_max+1, 2 d_max]
    // per eigenvalue interlacing bounds; with a heavy degree tail the top
    // of the spectrum inherits its shape.
    let lap = SymLaplacian::from_digraph(&net.graph);
    let eig = lanczos_topk(&lap, 120, 200, &mut rng, &vnet_ctx::AnalysisCtx::quiet());
    let dmax = (0..net.graph.node_count() as u32)
        .map(|v| vnet_algos::clustering::undirected_neighbors(&net.graph, v).len())
        .max()
        .unwrap() as f64;
    assert!(eig[0] >= dmax + 1.0 - 1e-6);
    assert!(eig[0] <= 2.0 * dmax + 1e-6);
    // Continuous fit on the eigenvalue tail succeeds with a credible
    // exponent (paper: 3.18 next to the degree 3.24).
    let fit = fit_continuous(&eig, &FitOptions { xmin: XminStrategy::Quantiles(25), min_tail: 20 })
        .unwrap();
    assert!(fit.alpha > 1.5 && fit.alpha < 8.0, "eigen alpha {}", fit.alpha);
}

#[test]
fn degree_xmin_scales_with_degree_scale() {
    // Doubling the mean degree should roughly double the fitted xmin —
    // the scan follows the distribution, not an absolute threshold.
    let mut fits = Vec::new();
    for (seed, mean) in [(5u64, 20.0f64), (6, 40.0)] {
        let cfg = VerifiedNetConfig { mean_out_degree: mean, ..VerifiedNetConfig::small() };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = VerifiedNetwork::generate(&cfg, &mut rng);
        let degrees: Vec<u64> =
            net.graph.out_degrees().into_iter().filter(|&d| d > 0).collect();
        fits.push(fit_discrete(&degrees, &opts()).unwrap());
    }
    let ratio = fits[1].xmin as f64 / fits[0].xmin as f64;
    assert!(ratio > 1.2 && ratio < 4.0, "xmin ratio {ratio} ({} vs {})", fits[1].xmin, fits[0].xmin);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn discrete_fit_alpha_recovery_property(alpha in 2.1f64..3.6, seed in 0u64..1000) {
        // Pure synthetic power law: the MLE must recover alpha within
        // sampling error, for any exponent and seed.
        let mut rng = StdRng::seed_from_u64(seed);
        let data = DiscretePowerLaw::new(alpha, 3).sample_n(&mut rng, 30_000);
        let fit = fit_discrete(&data, &FitOptions { xmin: XminStrategy::Quantiles(20), min_tail: 100 }).unwrap();
        prop_assert!((fit.alpha - alpha).abs() < 0.25,
            "alpha in {}, out {}", alpha, fit.alpha);
    }
}
