//! Thread-count invariance battery for the `vnet-par` fork-join layer.
//!
//! The contract (see `vnet-par` crate docs): every result produced through
//! a `ParPool` is a pure function of the problem and the seed — the thread
//! count may only change wall-clock time. These tests sweep pools of
//! 1/2/4/7 workers over every ported stage (bootstrap GoF, sampled
//! betweenness, the BFS separation sweep, Lanczos, PageRank) and demand
//! *bit* equality, then pin the same property end-to-end through the full
//! analysis battery and its run manifest.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use verified_net::{run_analysis, AnalysisCtx, AnalysisOptions, Dataset, SynthesisConfig};
use vnet_algos::betweenness::betweenness_sampled;
use vnet_algos::distances::{distance_distribution, SourceSpec};
use vnet_algos::pagerank::{pagerank, PageRankConfig};
use vnet_obs::Obs;
use vnet_par::ParPool;
use vnet_powerlaw::{bootstrap_pvalue_discrete, fit_discrete, FitOptions, XminStrategy};
use vnet_spectral::{lanczos_topk, SymLaplacian};
use vnet_stats::sampling::DiscretePowerLaw;
use vnet_synth::{VerifiedNetConfig, VerifiedNetwork};

/// The thread counts every sweep compares: serial, even splits, and a
/// prime that never divides the task counts evenly.
const SWEEP: [usize; 4] = [1, 2, 4, 7];

fn tiny_net(seed: u64) -> vnet_graph::DiGraph {
    let cfg = VerifiedNetConfig {
        nodes: 400,
        mean_out_degree: 9.0,
        celebrity_sinks: 2,
        ..VerifiedNetConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    VerifiedNetwork::generate(&cfg, &mut rng).graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bootstrap GoF p-values are bit-identical at any thread count: the
    /// replicate streams come from `StreamRng::split(seed, rep)`, never
    /// from a shared sequential generator.
    #[test]
    fn bootstrap_pvalue_thread_invariant(seed in 0u64..1 << 40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = DiscretePowerLaw::new(2.6, 2).sample_n(&mut rng, 1_200);
        let opts = FitOptions { xmin: XminStrategy::Quantiles(12), min_tail: 10 };
        let fit = fit_discrete(&data, &opts).unwrap();
        let reference = bootstrap_pvalue_discrete(
            &data, &fit, 20, &opts, seed, &AnalysisCtx::quiet(),
        ).unwrap();
        for &threads in &SWEEP[1..] {
            let p = bootstrap_pvalue_discrete(
                &data, &fit, 20, &opts, seed, &AnalysisCtx::with_threads(threads),
            ).unwrap();
            prop_assert_eq!(reference.to_bits(), p.to_bits(), "threads={}", threads);
        }
    }

    /// Sampled betweenness scores (non-associative float accumulation) are
    /// bit-identical at any thread count: fixed-size pivot chunks, partials
    /// folded in chunk order.
    #[test]
    fn betweenness_thread_invariant(seed in 0u64..1 << 40, pivots in 5usize..40) {
        let g = tiny_net(seed);
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            betweenness_sampled(&g, pivots, &mut rng, &AnalysisCtx::with_threads(threads))
        };
        let reference = run(1);
        for &threads in &SWEEP[1..] {
            let scores = run(threads);
            prop_assert!(
                reference.iter().zip(&scores).all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={}", threads
            );
        }
    }

    /// The separation (distance distribution) sweep is identical at any
    /// thread count — including its derived float statistics, because the
    /// accumulation itself is pure integer arithmetic.
    #[test]
    fn separation_thread_invariant(seed in 0u64..1 << 40, sources in 4usize..50) {
        let g = tiny_net(seed);
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            distance_distribution(
                &g, SourceSpec::Sampled(sources), &mut rng,
                &AnalysisCtx::with_threads(threads),
            )
        };
        let reference = run(1);
        for &threads in &SWEEP[1..] {
            prop_assert_eq!(&reference, &run(threads), "threads={}", threads);
        }
    }
}

#[test]
fn lanczos_and_pagerank_thread_invariant() {
    let g = tiny_net(0xA11CE);
    let lap = SymLaplacian::from_digraph(&g);
    let eig = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(17);
        lanczos_topk(&lap, 12, 40, &mut rng, &AnalysisCtx::with_threads(threads))
    };
    let pr = |threads: usize| {
        pagerank(&g, PageRankConfig::default(), &AnalysisCtx::with_threads(threads)).scores
    };
    let (eig_ref, pr_ref) = (eig(1), pr(1));
    for &threads in &SWEEP[1..] {
        assert!(
            eig_ref.iter().zip(eig(threads)).all(|(a, b)| a.to_bits() == b.to_bits()),
            "lanczos differs at threads={threads}"
        );
        assert!(
            pr_ref.iter().zip(pr(threads)).all(|(a, b)| a.to_bits() == b.to_bits()),
            "pagerank differs at threads={threads}"
        );
    }
}

/// Full battery under a pool of `threads` workers (bootstrap on, so the
/// GoF path is exercised too). Returns the report JSON and the manifest's
/// deterministic view JSON.
fn full_run(threads: usize) -> (String, String) {
    let ds = Dataset::build(&SynthesisConfig::small(), &AnalysisCtx::quiet());
    let opts = AnalysisOptions::quick()
        .to_builder()
        .threads(threads)
        .bootstrap_reps(6)
        .build();
    let obs = Arc::new(Obs::new());
    let ctx = AnalysisCtx::new(ParPool::new(threads), Arc::clone(&obs));
    let report = run_analysis(&ds, &opts, &ctx);
    let mut manifest = obs.manifest("par-golden", opts.seed);
    manifest.fingerprint_output("analysis.report", &report);
    (serde_json::to_string(&report).unwrap(), manifest.deterministic_json())
}

#[test]
fn full_analysis_report_identical_across_thread_counts() {
    let (report_serial, manifest_serial) = full_run(1);
    let (report_par, manifest_par) = full_run(4);
    assert_eq!(
        report_serial, report_par,
        "the full analysis report must be byte-identical across thread counts"
    );
    // The manifests agree on everything except nothing: same counters
    // (par.tasks included — the decomposition is static), same stages,
    // same fingerprints. Wall-clock histograms are scrubbed by the
    // deterministic view.
    assert_eq!(
        manifest_serial, manifest_par,
        "deterministic manifest views must be byte-identical across thread counts"
    );
}

#[test]
fn same_seed_threaded_runs_produce_byte_identical_manifests() {
    let (_, first) = full_run(4);
    let (_, second) = full_run(4);
    assert_eq!(first, second);
}

#[test]
fn manifest_records_steal_free_par_counters() {
    let (_, manifest_json) = full_run(2);
    let manifest: vnet_obs::RunManifest = serde_json::from_str(&manifest_json).unwrap();
    let stages = [
        "pagerank",
        "betweenness",
        "distances.bfs",
        "lanczos",
        "gof.bootstrap.continuous",
        "gof.bootstrap.discrete",
    ];
    for stage in stages {
        let tasks = manifest.counters.get(&format!("par.tasks{{stage={stage}}}"));
        let steal_free =
            manifest.counters.get(&format!("par.steal_free_chunks{{stage={stage}}}"));
        assert!(tasks.is_some(), "missing par.tasks for {stage}");
        assert_eq!(
            tasks, steal_free,
            "static schedule invariant broken for {stage}: every chunk runs on its assigned worker"
        );
    }
    // Wall-clock histograms exist in the full manifest but never in the
    // deterministic view.
    assert!(!manifest_json.contains("par.stage_wall_micros"));
}
