//! Reference cross-validation: every graph algorithm checked against an
//! independent brute-force implementation on randomized small graphs.
//! These are the tests that make the paper-scale numbers trustworthy —
//! if Brandes, Tarjan, PageRank or the Laplacian drifted, the calibrated
//! figures would be fiction.

use proptest::prelude::*;
use vnet_algos::betweenness::betweenness_exact;
use vnet_algos::components::strongly_connected_components;
use vnet_algos::distances::{bfs_distances, UNREACHABLE};
use vnet_algos::pagerank::{pagerank, PageRankConfig};
use vnet_algos::reciprocity::reciprocity;
use vnet_graph::builder::from_edges;
use vnet_graph::DiGraph;
use vnet_spectral::{lanczos_topk, SymLaplacian};

/// Random edge list over `n` nodes from a proptest-provided pair vector.
fn graph_from(n: u32, raw: &[(u32, u32)]) -> DiGraph {
    let edges: Vec<(u32, u32)> = raw.iter().map(|&(u, v)| (u % n, v % n)).collect();
    from_edges(n, &edges).unwrap()
}

/// Floyd–Warshall over the adjacency for distance reference.
fn floyd_warshall(g: &DiGraph) -> Vec<Vec<u32>> {
    let n = g.node_count();
    let inf = u32::MAX / 4;
    let mut d = vec![vec![inf; n]; n];
    for v in 0..n {
        d[v][v] = 0;
    }
    for (u, v) in g.edges() {
        d[u as usize][v as usize] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

/// Brute-force SCC labelling via mutual reachability.
fn brute_scc_same(g: &DiGraph, a: u32, b: u32) -> bool {
    let da = bfs_distances(g, a);
    let db = bfs_distances(g, b);
    da[b as usize] != UNREACHABLE && db[a as usize] != UNREACHABLE
}

/// Brute-force betweenness by per-pair shortest-path enumeration.
fn brute_betweenness(g: &DiGraph) -> Vec<f64> {
    let n = g.node_count();
    let mut score = vec![0.0f64; n];
    for s in 0..n as u32 {
        let dist = bfs_distances(g, s);
        // Count shortest paths from s by DP in BFS order.
        let mut order: Vec<u32> = (0..n as u32)
            .filter(|&v| dist[v as usize] != UNREACHABLE)
            .collect();
        order.sort_by_key(|&v| dist[v as usize]);
        let mut sigma = vec![0.0f64; n];
        sigma[s as usize] = 1.0;
        for &v in &order {
            for &w in g.out_neighbors(v) {
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                }
            }
        }
        // For each target t and interior v: paths through v =
        // sigma_sv * sigma_vt(computed on reverse) with distance check.
        for t in 0..n as u32 {
            if t == s || dist[t as usize] == UNREACHABLE {
                continue;
            }
            // sigma from t backwards: count shortest s->t paths through v
            // as sigma[v] * sigma_rev[v] where sigma_rev counts paths from
            // v to t along the BFS DAG.
            let mut sigma_rev = vec![0.0f64; n];
            sigma_rev[t as usize] = 1.0;
            let mut rev_order = order.clone();
            rev_order.sort_by_key(|&v| std::cmp::Reverse(dist[v as usize]));
            for &v in &rev_order {
                for &w in g.out_neighbors(v) {
                    if dist[w as usize] == dist[v as usize] + 1 {
                        sigma_rev[v as usize] += sigma_rev[w as usize];
                    }
                }
            }
            let total = sigma[t as usize];
            if total == 0.0 {
                continue;
            }
            for v in 0..n as u32 {
                if v != s
                    && v != t
                    && dist[v as usize] != UNREACHABLE
                    && dist[v as usize] < dist[t as usize]
                {
                    score[v as usize] += sigma[v as usize] * sigma_rev[v as usize] / total;
                }
            }
        }
    }
    score
}

/// Dense PageRank reference (explicit matrix iteration).
fn dense_pagerank(g: &DiGraph, damping: f64, iters: usize) -> Vec<f64> {
    let n = g.node_count();
    let mut r = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![0.0f64; n];
        let mut dangling = 0.0;
        for u in 0..n as u32 {
            let d = g.out_degree(u);
            if d == 0 {
                dangling += r[u as usize];
            } else {
                let share = r[u as usize] / d as f64;
                for &v in g.out_neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        for x in next.iter_mut() {
            *x = (1.0 - damping) / n as f64 + damping * (*x + dangling / n as f64);
        }
        r = next;
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bfs_matches_floyd_warshall(raw in proptest::collection::vec((0u32..10, 0u32..10), 0..50)) {
        let g = graph_from(10, &raw);
        let fw = floyd_warshall(&g);
        for s in 0..10u32 {
            let bfs = bfs_distances(&g, s);
            for t in 0..10usize {
                let expect = if fw[s as usize][t] >= u32::MAX / 4 { UNREACHABLE } else { fw[s as usize][t] };
                prop_assert_eq!(bfs[t], expect, "s={} t={}", s, t);
            }
        }
    }

    #[test]
    fn tarjan_matches_mutual_reachability(raw in proptest::collection::vec((0u32..9, 0u32..9), 0..40)) {
        let g = graph_from(9, &raw);
        let scc = strongly_connected_components(&g);
        for a in 0..9u32 {
            for b in (a + 1)..9u32 {
                let same = scc.component_of[a as usize] == scc.component_of[b as usize];
                prop_assert_eq!(same, brute_scc_same(&g, a, b), "a={} b={}", a, b);
            }
        }
    }

    #[test]
    fn brandes_matches_brute_force(raw in proptest::collection::vec((0u32..8, 0u32..8), 0..30)) {
        let g = graph_from(8, &raw);
        let fast = betweenness_exact(&g);
        let brute = brute_betweenness(&g);
        for v in 0..8usize {
            prop_assert!((fast[v] - brute[v]).abs() < 1e-9,
                "v={}: brandes {} vs brute {}", v, fast[v], brute[v]);
        }
    }

    #[test]
    fn pagerank_matches_dense_reference(raw in proptest::collection::vec((0u32..12, 0u32..12), 0..60)) {
        let g = graph_from(12, &raw);
        let fast = pagerank(
            &g,
            PageRankConfig { damping: 0.85, tol: 1e-14, max_iter: 500 },
            &vnet_ctx::AnalysisCtx::quiet(),
        );
        let dense = dense_pagerank(&g, 0.85, 500);
        for v in 0..12usize {
            prop_assert!((fast.scores[v] - dense[v]).abs() < 1e-10,
                "v={}: {} vs {}", v, fast.scores[v], dense[v]);
        }
        let total: f64 = fast.scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reciprocity_matches_brute_force(raw in proptest::collection::vec((0u32..10, 0u32..10), 0..60)) {
        let g = graph_from(10, &raw);
        let fast = reciprocity(&g);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let brute = if edges.is_empty() { 0.0 } else {
            edges.iter().filter(|&&(u, v)| edges.contains(&(v, u))).count() as f64
                / edges.len() as f64
        };
        prop_assert!((fast - brute).abs() < 1e-12);
    }

    #[test]
    fn laplacian_spectrum_trace_identities(raw in proptest::collection::vec((0u32..9, 0u32..9), 1..40)) {
        // Full spectrum via Lanczos at k = n; check both trace identities:
        // Σλ = Σd and Σλ² = Σ(d² + d) for the simple-graph Laplacian.
        let g = graph_from(9, &raw);
        let lap = SymLaplacian::from_digraph(&g);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let eig = lanczos_topk(&lap, 9, 9, &mut rng, &vnet_ctx::AnalysisCtx::quiet());
        let deg: Vec<f64> = (0..9).map(|v| lap.degree(v)).collect();
        let trace: f64 = deg.iter().sum();
        let trace2: f64 = deg.iter().map(|&d| d * d + d).sum();
        let s1: f64 = eig.iter().sum();
        let s2: f64 = eig.iter().map(|&l| l * l).sum();
        prop_assert!((s1 - trace).abs() < 1e-6 * trace.max(1.0), "Σλ {} vs Σd {}", s1, trace);
        prop_assert!((s2 - trace2).abs() < 1e-5 * trace2.max(1.0), "Σλ² {} vs {}", s2, trace2);
    }
}
