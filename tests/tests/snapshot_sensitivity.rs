//! Snapshot-timing sensitivity: the paper crawled once (July 18, 2018) and
//! treats its statistics as properties of "the verified network". With the
//! churn timeline bound, we can crawl the *same* society at different
//! simulated dates and check that the structural fingerprint is robust to
//! snapshot choice — the implicit assumption behind any one-shot
//! measurement study.

use vnet_algos::components::strongly_connected_components;
use vnet_algos::reciprocity::reciprocity;
use vnet_graph::induced_subgraph;
use vnet_twittersim::{ChurnConfig, RosterTimeline, SimClock, Society, SocietyConfig};

/// Crawl-equivalent: induce the sub-graph of English verified users as of
/// `day` directly from the timeline (the API path is exercised elsewhere;
/// here we want many snapshots cheaply).
fn snapshot_graph(society: &Society, timeline: &RosterTimeline, day: u32) -> vnet_graph::DiGraph {
    let members: Vec<u32> = (0..society.user_count() as u32)
        .filter(|&v| {
            timeline.is_verified(v, day) && society.profiles[v as usize].lang == "en"
        })
        .collect();
    induced_subgraph(&society.network.graph, &members).graph
}

#[test]
fn fingerprint_robust_across_snapshot_dates() {
    let society = Society::generate(&SocietyConfig::small());
    let timeline = RosterTimeline::generate(&society, &ChurnConfig::default());

    let mut reciprocities = Vec::new();
    let mut scc_fractions = Vec::new();
    for day in [0u32, 90, 180, 270, 365] {
        let g = snapshot_graph(&society, &timeline, day);
        reciprocities.push(reciprocity(&g));
        scc_fractions.push(strongly_connected_components(&g).giant_fraction());
    }
    // Every snapshot preserves the fingerprint's direction...
    for (&r, &s) in reciprocities.iter().zip(&scc_fractions) {
        assert!(r > 0.221, "reciprocity dropped below whole-Twitter at some snapshot: {r}");
        // Thinner than the full-roster 97%: the day-0 snapshot keeps only
        // ~93% of users, and random removal mints accidental sinks.
        assert!(s > 0.85, "giant SCC broke at some snapshot: {s}");
    }
    // ...and the drift across a year of churn stays well inside the gap
    // that separates the verified network from the whole-Twitter 22.1%.
    // (The drift is not negligible at this scale: mutual edges concentrate
    // on few prominent accounts, so dropping a handful of them from a
    // snapshot moves reciprocity by points — a caveat any one-shot crawl
    // inherits.)
    let r_spread = reciprocities.iter().cloned().fold(f64::MIN, f64::max)
        - reciprocities.iter().cloned().fold(f64::MAX, f64::min);
    assert!(r_spread < 0.08, "reciprocity drifts too much across snapshots: {reciprocities:?}");
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(24))]

    /// Snapshot consistency as a property over the shared tiny-society
    /// distribution (the same generator the fault-conformance battery
    /// uses): whatever the society and whatever simulated day the crawl
    /// starts, the harvested roster is exactly that day's roster, and the
    /// English cohort is a subset of it.
    #[test]
    fn crawl_roster_matches_its_snapshot_day(
        cfg in vnet_integration_tests::tiny_society_config(),
        day in 0u32..399,
    ) {
        use vnet_twittersim::{Crawler, RateLimitPolicy, TwitterApi};
        let society = Society::generate(&cfg);
        let timeline = RosterTimeline::generate(&society, &ChurnConfig::default());
        let clock = SimClock::new();
        clock.advance(u64::from(day) * 86_400);
        let api = TwitterApi::new(&society, clock, RateLimitPolicy::unlimited(), 0.0)
            .with_timeline(timeline.clone());
        let ds = Crawler::new(&api).crawl().unwrap();
        proptest::prop_assert_eq!(ds.stats.roster_size, timeline.roster_at(day).len());
        proptest::prop_assert!(ds.stats.english_users <= ds.stats.roster_size);
        proptest::prop_assert_eq!(ds.graph.node_count(), ds.stats.english_users);
    }
}

#[test]
fn api_crawl_sees_the_snapshot_of_its_clock() {
    use vnet_twittersim::{Crawler, RateLimitPolicy, TwitterApi};
    let society = Society::generate(&SocietyConfig::small());
    let timeline = RosterTimeline::generate(&society, &ChurnConfig::default());

    // Crawl "on day 200": the roster the crawler harvests must be exactly
    // the day-200 roster.
    let clock = SimClock::new();
    clock.advance(200 * 86_400);
    let api = TwitterApi::new(&society, clock, RateLimitPolicy::unlimited(), 0.0)
        .with_timeline(timeline.clone());
    let ds = Crawler::new(&api).crawl().unwrap();
    let expected = timeline.roster_at(200).len();
    assert_eq!(ds.stats.roster_size, expected);
    // And it differs from the day-0 roster (churn is real).
    assert_ne!(ds.stats.roster_size, timeline.roster_at(0).len());
}
