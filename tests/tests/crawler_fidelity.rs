//! Crawler-vs-ground-truth integration: the Section III pipeline must be
//! exact under every adversity the simulated platform can throw at it,
//! and the crawled graph must survive serialization.

use vnet_graph::{induced_subgraph, io};
use vnet_twittersim::{
    Crawler, RateLimitPolicy, SimClock, Society, SocietyConfig, TwitterApi,
};

fn ground_truth(society: &Society) -> vnet_graph::DiGraph {
    let english: Vec<u32> = (0..society.user_count() as u32)
        .filter(|&v| society.profiles[v as usize].lang == "en")
        .collect();
    induced_subgraph(&society.network.graph, &english).graph
}

#[test]
fn crawl_exact_under_rate_limits_and_failures() {
    let society = Society::generate(&SocietyConfig::small());
    let truth = ground_truth(&society);

    let policy = RateLimitPolicy {
        friends_ids: 500,
        users_lookup: 40,
        roster: 3,
        window_secs: 900,
    };
    let api = TwitterApi::new(&society, SimClock::new(), policy, 0.05);
    let ds = Crawler::new(&api).crawl().expect("crawl");

    assert_eq!(ds.graph, truth, "adversity must not corrupt the dataset");
    assert!(ds.stats.rate_limit_waits > 0);
    assert!(ds.stats.transient_retries > 0);
    // Simulated time is consistent with the number of waits taken.
    assert!(ds.stats.simulated_seconds >= ds.stats.rate_limit_waits as u64);
}

#[test]
fn crawl_is_idempotent() {
    let society = Society::generate(&SocietyConfig::small());
    let api = TwitterApi::new(&society, SimClock::new(), RateLimitPolicy::unlimited(), 0.0);
    let a = Crawler::new(&api).crawl().unwrap();
    let b = Crawler::new(&api).crawl().unwrap();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.platform_ids, b.platform_ids);
}

#[test]
fn crawled_graph_serializes_and_reloads() {
    let society = Society::generate(&SocietyConfig::small());
    let api = TwitterApi::new(&society, SimClock::new(), RateLimitPolicy::unlimited(), 0.0);
    let ds = Crawler::new(&api).crawl().unwrap();

    // Binary round trip.
    let mut buf = Vec::new();
    io::write_binary(&ds.graph, &mut buf).unwrap();
    let reloaded = io::read_binary(&buf[..]).unwrap();
    assert_eq!(reloaded, ds.graph);

    // Edge-list round trip (node count preserved via min_nodes).
    let mut text = Vec::new();
    io::write_edge_list(&ds.graph, &mut text).unwrap();
    let reloaded = io::read_edge_list(&text[..], ds.graph.node_count() as u32).unwrap();
    assert_eq!(reloaded, ds.graph);
}

#[test]
fn english_filter_ratio_matches_configuration() {
    let society = Society::generate(&SocietyConfig::small());
    let api = TwitterApi::new(&society, SimClock::new(), RateLimitPolicy::unlimited(), 0.0);
    let ds = Crawler::new(&api).crawl().unwrap();
    let ratio = ds.stats.english_users as f64 / ds.stats.roster_size as f64;
    // Paper: 231,246 / 297,776 = 0.7766.
    assert!((ratio - 0.7766).abs() < 0.03, "english ratio {ratio}");
    // Kept links are a strict subset of raw links.
    assert!(ds.stats.internal_links <= ds.stats.raw_friend_links);
}
