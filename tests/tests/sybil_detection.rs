//! The sybil detection battery (ROADMAP item 4, `scripts/verify.sh sybil`).
//!
//! Builds the calibrated adversarial workload end-to-end — generated
//! verified network, planted fake-follower rings, purchased-follower
//! campaigns arriving as churn days — runs the three-scorer detection
//! pipeline, and pins:
//!
//! * the planted-recall floor (≥ 0.9 at the default calibration) and an
//!   AUC sanity floor;
//! * byte-identical suspicion rankings and P/R blocks across repeated
//!   runs and across `AnalysisCtx` thread counts;
//! * label round-trip through the serialized `VNSY` blob.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vnet_ctx::AnalysisCtx;
use vnet_detect::{evaluate, run_detection, DetectConfig, DetectInput};
use vnet_graph::NodeId;
use vnet_synth::{
    inject_sybil, ChurnConfig, ChurnEvent, PlantedLabels, SybilConfig, VerifiedNetConfig,
    VerifiedNetwork,
};

/// The number of churn days the battery runs: every campaign has landed
/// and a few calm days follow.
fn horizon(cfg: &SybilConfig) -> u32 {
    cfg.burst_day + (cfg.bursts - 1) * cfg.burst_stride + cfg.burst_span + 2
}

/// Build the full workload and collect the detection input: the churned
/// end-state graph plus per-day follow attribution.
fn build_workload(
    net_seed: u64,
    churn_seed: u64,
    sybil: &SybilConfig,
) -> (vnet_graph::DiGraph, Vec<Vec<(NodeId, NodeId)>>, PlantedLabels) {
    let mut rng = StdRng::seed_from_u64(net_seed);
    let net = VerifiedNetwork::generate(&VerifiedNetConfig::small(), &mut rng);
    let workload = inject_sybil(&net.graph, sybil);
    let mut stream = vnet_synth::ChurnStream::from_graph(
        &workload.graph,
        ChurnConfig { seed: churn_seed, ..ChurnConfig::default() },
    );
    workload.attach(&mut stream);
    let mut daily: Vec<Vec<(NodeId, NodeId)>> = Vec::new();
    for _ in 0..horizon(sybil) {
        let batch = stream.next_day();
        let mut follows: Vec<(NodeId, NodeId)> = Vec::new();
        for event in &batch.events {
            if let ChurnEvent::Follow { source, target } = event {
                follows.push((*source, *target));
            }
        }
        daily.push(follows);
    }
    (stream.snapshot_graph(), daily, workload.labels)
}

#[test]
fn planted_recall_meets_the_calibrated_floor() {
    let sybil = SybilConfig::default();
    let (graph, daily, labels) = build_workload(17, 23, &sybil);
    let ctx = AnalysisCtx::quiet();
    let report = run_detection(
        &DetectInput { graph: &graph, daily_follows: &daily },
        &DetectConfig::default(),
        &ctx,
    );
    let positives = labels.sybils();
    assert_eq!(positives.len(), sybil.planted_count());
    let eval = evaluate(&report, &positives);
    assert!(
        eval.recall_at_planted >= 0.9,
        "recall floor broken: {}\n{}",
        eval.recall_at_planted,
        eval.canonical()
    );
    assert!(eval.auc >= 0.97, "auc floor broken: {}", eval.auc);
    // Campaign days were actually found by the change-point machinery.
    assert!(
        !report.burst_days.is_empty(),
        "PELT found no campaign days: {}",
        report.canonical(5)
    );
}

#[test]
fn ranking_and_pr_block_are_thread_count_invariant() {
    let sybil = SybilConfig::default();
    let (graph, daily, labels) = build_workload(17, 23, &sybil);
    let positives = labels.sybils();
    let mut blocks: Vec<(String, String)> = Vec::new();
    for threads in [1usize, 4] {
        let ctx = AnalysisCtx::with_threads(threads);
        let report = run_detection(
            &DetectInput { graph: &graph, daily_follows: &daily },
            &DetectConfig::default(),
            &ctx,
        );
        let eval = evaluate(&report, &positives);
        blocks.push((report.canonical(100), eval.canonical()));
    }
    assert_eq!(blocks[0], blocks[1], "detection must be thread-count invariant");
    // And run-to-run identical.
    let ctx = AnalysisCtx::quiet();
    let again = run_detection(
        &DetectInput { graph: &graph, daily_follows: &daily },
        &DetectConfig::default(),
        &ctx,
    );
    assert_eq!(blocks[0].0, again.canonical(100));
}

#[test]
fn labels_round_trip_and_disjointness() {
    let sybil = SybilConfig::default();
    let mut rng = StdRng::seed_from_u64(17);
    let net = VerifiedNetwork::generate(&VerifiedNetConfig::small(), &mut rng);
    let workload = inject_sybil(&net.graph, &sybil);
    let labels = &workload.labels;
    let blob = labels.serialize();
    assert_eq!(&PlantedLabels::deserialize(&blob).unwrap(), labels);
    // Sybils are strictly above the base universe; customers strictly
    // inside it.
    let n_base = net.graph.node_count() as NodeId;
    assert!(labels.sybils().iter().all(|&s| s >= n_base));
    assert!(labels.customers.iter().all(|&c| c < n_base));
    // Rings and bursts are disjoint.
    assert!(labels
        .ring_members
        .iter()
        .all(|m| labels.burst_accounts.binary_search(m).is_err()));
}
