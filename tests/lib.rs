//! Integration-test-only crate; see tests/tests/.
