//! Shared generators and fixtures for the integration-test battery.
//!
//! The fault-conformance battery (`tests/fault_conformance.rs`) and the
//! snapshot-sensitivity suite (`tests/snapshot_sensitivity.rs`) both need
//! randomized-but-replayable societies small enough to crawl hundreds of
//! times. The strategies live here so the two batteries exercise the same
//! input distribution — a divergence caught by one is reproducible in the
//! other.

use proptest::Strategy;
use vnet_twittersim::{
    CrawlDataset, Crawler, FaultPlan, RateLimitPolicy, SimClock, Society, SocietyConfig,
    TwitterApi,
};

/// Strategy over *tiny* societies: 120–320 nodes with mean out-degree
/// 6–14 and two celebrity sinks. Small enough that a full simulated crawl
/// is milliseconds, large enough that the English filter, pagination, and
/// sink structure all stay non-trivial. The generation seed varies too, so
/// cases differ in wiring and not just scale.
pub fn tiny_society_config() -> impl Strategy<Value = SocietyConfig> {
    (120u32..=320, 6.0f64..=14.0, 0u64..1 << 48).prop_map(|(nodes, mean_out, seed)| {
        let mut cfg = SocietyConfig::small();
        cfg.net.nodes = nodes;
        cfg.net.mean_out_degree = mean_out;
        cfg.net.celebrity_sinks = 2;
        cfg.seed = 0x2018_0718 ^ seed;
        cfg
    })
}

/// Strategy over *healing* fault plans ([`FaultPlan::generate`]): 1–4
/// mixed clauses, every window inside the first simulated hour. The plan
/// is a pure function of the drawn seed, so a failing case's plan is fully
/// described by its debug output.
pub fn healing_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..u64::MAX).prop_map(FaultPlan::generate)
}

/// The fault-free ground-truth crawl of `society`: unlimited rate limits,
/// no failures, no fault plan. Conformance tests compare degraded crawls
/// against this bit-for-bit.
pub fn fault_free_crawl(society: &Society) -> CrawlDataset {
    let api = TwitterApi::new(society, SimClock::new(), RateLimitPolicy::unlimited(), 0.0);
    Crawler::new(&api).crawl().expect("fault-free crawl cannot fail")
}
