//! Offline vendored subset of the `proptest` API.
//!
//! Provides the property-testing surface the workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range and tuple [`Strategy`]s, [`collection::vec`], [`Just`],
//! `prop_map`, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (failing inputs are reported
//! verbatim), and case generation is fully deterministic — each test
//! function derives its RNG stream from its own name, so failures replay
//! without a persistence file (`proptest-regressions/` is ignored).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(
        self,
        f: F,
    ) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A strategy choosing uniformly among boxed alternatives — the backing
/// type of the [`prop_oneof!`] macro.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// A union over `options`. Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Choose uniformly among several strategies producing the same value
/// type (upstream's `prop_oneof!` without the weighted `N => s` form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Sizes a generated collection may take.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// The strategy returned by [`fn@vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with length drawn from
    /// `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Derive a stable 64-bit seed from a test function's name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a; stability across runs and platforms is all that matters.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// RNG for one case of a named property test.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_from_name(name) ^ ((case as u64) << 32 | 0x9E37))
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Assert a condition inside a property; failure reports the generated
/// inputs of the offending case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), left
        );
    }};
}

#[doc(hidden)]
pub fn __run_case<F>(name: &str, case: u32, inputs: String, body: F)
where
    F: FnOnce() -> Result<(), TestCaseError> + std::panic::UnwindSafe,
{
    match std::panic::catch_unwind(body) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            panic!("property '{name}' failed at case {case}: {e}\ninputs: {inputs}")
        }
        Err(payload) => {
            eprintln!("property '{name}' panicked at case {case}\ninputs: {inputs}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Define property tests: each function runs its body over `cases`
/// randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::__proptest_run!(config, $name, ($($pat in $strat),+), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ($config:expr, $name:ident, ($($pat:pat in $strat:expr),+), $body:block) => {
        for __case in 0..$config.cases {
            let mut __rng = $crate::case_rng(stringify!($name), __case);
            let __vals = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
            let __inputs = format!(
                concat!("(", stringify!($($pat),+), ") = {:?}"),
                __vals
            );
            let ($($pat,)+) = __vals;
            $crate::__run_case(
                stringify!($name),
                __case,
                __inputs,
                // Fully qualified: test modules often import a crate-local
                // `Result<T>` alias that would otherwise shadow this.
                std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                ),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths(mut data in collection::vec(0u8..5, 3..7)) {
            data.push(0);
            prop_assert!(data.len() >= 4 && data.len() <= 7);
        }

        #[test]
        fn tuples_work(pair in collection::vec((0u32..4, 0u32..4), 0..10)) {
            for (a, b) in pair {
                prop_assert!(a < 4 && b < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::Strategy;
        let s = crate::collection::vec(0u32..100, 5..20);
        let a = s.generate(&mut crate::case_rng("t", 0));
        let b = s.generate(&mut crate::case_rng("t", 0));
        let c = s.generate(&mut crate::case_rng("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prop_map_applies() {
        use crate::Strategy;
        let s = (0u32..10).prop_map(|x| x * 2);
        let v = s.generate(&mut crate::case_rng("m", 0));
        assert!(v % 2 == 0 && v < 20);
    }
}
