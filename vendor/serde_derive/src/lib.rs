//! Derive macros for the vendored `serde` subset.
//!
//! Supports `struct`s with named fields (optionally generic over simple
//! type parameters) and fieldless (`unit-variant`) `enum`s — the only
//! shapes the workspace derives. Implemented directly on
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline): the macro walks tokens to find the item name, generic
//! parameters and field names, then emits the impl as formatted source.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the token walk discovered about the item being derived.
struct Item {
    name: String,
    /// Type-parameter names (lifetimes/const generics unsupported).
    generics: Vec<String>,
    kind: ItemKind,
}

enum ItemKind {
    /// Struct with named fields, in declaration order.
    Struct(Vec<String>),
    /// Enum with unit variants only.
    Enum(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Optional `(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let is_enum = match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("derive supports only structs and enums, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    // Optional simple generics `<T, U>` (bounds allowed and ignored).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            for tok in tokens.by_ref() {
                match &tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let s = id.to_string();
                        assert!(
                            !s.starts_with('\'') && s != "const",
                            "only simple type parameters are supported"
                        );
                        generics.push(s);
                        expect_param = false;
                    }
                    _ => {}
                }
            }
        }
    }
    // Find the brace group holding the body (skips any `where` clause).
    let body = tokens
        .find_map(|tok| match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
            _ => None,
        })
        .expect("derive supports only brace-bodied items");

    let kind = if is_enum {
        ItemKind::Enum(parse_unit_variants(body.stream()))
    } else {
        ItemKind::Struct(parse_named_fields(body.stream()))
    };
    Item { name, generics, kind }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("only unit enum variants are supported, found {other:?}"),
        }
    }
    variants
}

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (params, target) = impl_header(&item, "Serialize");
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{f}\"), serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{}::{v} => serde::Content::Str(String::from(\"{v}\")),",
                        item.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{params} serde::Serialize for {target} {{\n\
         fn to_content(&self) -> serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (params, target) = impl_header(&item, "Deserialize");
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let lets: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "let {f} = serde::Deserialize::from_content(\
                         content.get(\"{f}\").unwrap_or(&serde::Content::Null))\
                         .map_err(|e| serde::DeError(format!(\
                         \"field {f}: {{e}}\")))?;"
                    )
                })
                .collect();
            format!(
                "{} Ok({} {{ {} }})",
                lets.join("\n"),
                item.name,
                fields.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({}::{v}),", item.name))
                .collect();
            format!(
                "match content {{\n\
                 serde::Content::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => Err(serde::DeError(format!(\"unknown variant {{other}}\"))),\n\
                 }},\n\
                 _ => Err(serde::DeError::expected(\"enum variant string\", content)),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl{params} serde::Deserialize for {target} {{\n\
         fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
