//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small serialization surface the workspace needs: a self-describing
//! [`Content`] tree, [`Serialize`]/[`Deserialize`] traits mapping types
//! onto it, and derive macros (re-exported from `serde_derive`) for
//! structs with named fields. `serde_json` (also vendored) renders
//! [`Content`] to and from JSON text.
//!
//! This is intentionally *not* the upstream visitor-based architecture:
//! every serialized value materializes a [`Content`] tree. For the
//! dataset-checkpoint and report payloads this workspace produces, that
//! simplicity beats zero-copy performance.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (struct fields keep declaration
    /// order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a map `Content`.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Build an error describing a type mismatch.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {found:?}"))
    }
}

/// Types that can render themselves as a [`Content`] tree.
pub trait Serialize {
    /// Produce the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value from `content`.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), content)),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), content)),
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as $t),
                    _ => Err(DeError::expected(stringify!($t), content)),
                }
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), content)),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), content)),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    _ => Err(DeError::expected(stringify!($t), content)),
                }
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected(stringify!($t), content)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", content)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", content)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", content)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            _ => Err(DeError::expected("2-tuple", content)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            _ => Err(DeError::expected("3-tuple", content)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", content)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", content)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_leniency() {
        assert_eq!(u64::from_content(&Content::F64(5.0)).unwrap(), 5);
        assert_eq!(f64::from_content(&Content::U64(5)).unwrap(), 5.0);
        assert!(u32::from_content(&Content::F64(5.5)).is_err());
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn option_round_trip() {
        let some = Some(3u32).to_content();
        assert_eq!(Option::<u32>::from_content(&some).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
    }
}
