//! Offline vendored subset of the `criterion` API.
//!
//! A minimal timing harness with criterion's call shape: benchmark
//! groups, `bench_function`, `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of upstream's
//! statistical machinery it reports the median of a fixed number of
//! timed samples — enough to compare hot paths locally while keeping the
//! bench targets compiling offline.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times one benchmark's closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `f`, calling it enough times per sample to get stable
    /// numbers.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: target ~10ms per sample.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        self.iters_per_sample =
            (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let sample_count = self.samples.capacity().max(1);
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    match bencher.median() {
        Some(median) => println!("bench {label:<50} median {median:>12.2?}"),
        None => println!("bench {label:<50} (no samples)"),
    }
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 { 10 } else { self.sample_size };
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 10, f);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }
}
