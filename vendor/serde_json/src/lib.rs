//! Offline vendored subset of the `serde_json` API.
//!
//! Renders the vendored `serde` [`Content`] model to JSON text and parses
//! JSON text back. Floats print via Rust's shortest-round-trip `Display`,
//! so `to_string` → `from_str` preserves every finite `f64` exactly (the
//! `float_roundtrip` behaviour the workspace asks upstream for).
//! Non-finite floats serialize as `null`, as upstream does.

use serde::{Content, DeError, Deserialize, Serialize};

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---- serialization ---------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                let mut s = v.to_string();
                // Keep a float marker so integral floats parse back as F64.
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_content(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None);
    Ok(out)
}

/// Serialize `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(0));
    Ok(out)
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_content(bytes: &[u8]) -> Result<Content, Error> {
    let mut parser = Parser::new(bytes);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    Ok(T::from_content(&parse_content(bytes)?)?)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    from_slice(text.as_bytes())
}

// ---- dynamic values --------------------------------------------------

/// A dynamically-typed JSON value (subset of upstream's `Value`).
///
/// `repr(transparent)` over [`Content`] so indexing can hand out `&Value`
/// views of interior `Content` nodes without cloning.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Value(Content);

impl Value {
    fn wrap(content: &Content) -> &Value {
        // SAFETY: Value is repr(transparent) over Content.
        unsafe { &*(content as *const Content as *const Value) }
    }
}

static NULL: Value = Value(Content::Null);

impl Value {
    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match &self.0 {
            Content::U64(v) => Some(*v),
            Content::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match &self.0 {
            Content::F64(v) => Some(*v),
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.0 {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.0 {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.0, Content::Null)
    }

    /// The object's keys in document order, if the value is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match &self.0 {
            Content::Map(entries) => Some(entries.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Value(content.clone()))
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match &self.0 {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| Value::wrap(v))
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match &self.0 {
            Content::Seq(items) => items.get(idx).map(Value::wrap).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&String::from("a\"b")).unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123456789.123456789, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1.5f64, -2.0, 3.25];
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_indexing() {
        let v: Value =
            from_str("{\"a\": {\"b\": [1, 2.5, \"x\"]}, \"n\": null}").unwrap();
        assert_eq!(v["a"]["b"][0].as_u64(), Some(1));
        assert_eq!(v["a"]["b"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"]["b"][2].as_str(), Some("x"));
        assert!(v["n"].is_null());
        assert!(v["missing"]["deep"].is_null());
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "naïve ✨ line\nbreak \u{1}";
        let json = to_string(&String::from(s)).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
