//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of external crates the workspace uses are vendored as
//! minimal, self-contained reimplementations of exactly the API surface
//! the workspace consumes. This crate provides:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded through SplitMix64),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`], [`Rng::random_range`] and [`Rng::random_bool`].
//!
//! The generator is *not* the upstream ChaCha12-based `StdRng`; streams
//! differ from upstream `rand` for the same seed. Everything in this
//! workspace treats seeds as opaque reproducibility handles, so only
//! determinism and statistical quality matter, both of which
//! xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG's raw bits (the `StandardUniform`
/// distribution of upstream `rand`).
pub trait FromRandomBits: Sized {
    /// Draw one value.
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandomBits for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandomBits for f32 {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_from_random_bits_int {
    ($($t:ty),*) => {$(
        impl FromRandomBits for $t {
            fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_random_bits_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandomBits for bool {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform integer in `[0, n)` via Lemire's multiply-shift (bias `< 2^-64`,
/// irrelevant at simulation scale).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

/// Ranges a value can be drawn from (the `SampleRange` of upstream `rand`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as FromRandomBits>::from_random_bits(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as FromRandomBits>::from_random_bits(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (floats: uniform in `[0, 1)`).
    fn random<T: FromRandomBits>(&mut self) -> T {
        T::from_random_bits(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_random_bits(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Not upstream-compatible; see the crate
    /// docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0..=3u8);
            assert!(w <= 3);
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let neg = rng.random_range(-5i64..-1);
            assert!((-5..-1).contains(&neg));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
