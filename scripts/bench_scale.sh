#!/usr/bin/env bash
# Record BENCH_par.json at the medium scale tier (~60k nodes / ~5M edges,
# see docs/SCALING.md) — run-if-missing: the recorded baseline is a
# checked-in artefact, so this script only re-measures when the file is
# absent (delete it to re-record, e.g. after moving to different
# hardware). The `cores` field is always honest: it is read from nproc at
# recording time, and a single-core container can only show ~1.0x
# speedups by construction.
#
# BENCH_temporal.json is recorded by the same run-if-missing rule: the
# incremental-vs-scratch speedup of the temporal engine per churn day
# (the bin exits nonzero on any incremental/scratch divergence, so a
# recorded baseline is also a conformance witness).
#
#   scripts/bench_scale.sh            # records BENCH_par.json / BENCH_temporal.json if missing
#   FORCE=1 scripts/bench_scale.sh    # re-record unconditionally
set -euo pipefail
cd "$(dirname "$0")/.."

temporal_out="BENCH_temporal.json"
if [[ -f "$temporal_out" && "${FORCE:-0}" != "1" ]]; then
    echo "$temporal_out already recorded (FORCE=1 to re-record); skipping."
else
    echo "recording temporal incremental-vs-scratch sweep ..."
    cargo run --release -q -p vnet-bench --bin temporal_bench -- \
        --nodes 8000 --days 30 --seed 7 --threads 2 --out "$temporal_out"
fi

out="BENCH_par.json"
if [[ -f "$out" && "${FORCE:-0}" != "1" ]]; then
    echo "$out already recorded (FORCE=1 to re-record); nothing to do."
    exit 0
fi

command -v jq >/dev/null || { echo "error: jq required" >&2; exit 1; }
cores="$(nproc)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "recording medium-scale thread sweep on $cores core(s) ..."
for t in 1 2 4; do
    echo "--threads $t ..."
    cargo run --release -q -p vnet-bench --bin repro -- \
        --all --scale medium --threads "$t" --bootstrap-reps 30 \
        --manifest "$tmpdir/m$t.json" >"$tmpdir/t$t.log" 2>&1
done

# Per-stage wall micros from the manifest span tree (summed over repeat
# spans: some stages run under more than one experiment), plus the
# memory gauges the streaming build exports.
jq -n --argjson cores "$cores" \
    --slurpfile m1 "$tmpdir/m1.json" \
    --slurpfile m2 "$tmpdir/m2.json" \
    --slurpfile m4 "$tmpdir/m4.json" '
    def stage_wall($m; $span):
        [$m.stages[] | select(.name == $span) | .wall_micros] | add // 0;
    # Historical BENCH_par.json keys -> manifest span names. The
    # separation stage is one span (the BFS *is* the stage); the rest are
    # leaf spans under their section.
    def stages($m):
        [{key: "degrees.bootstrap",      span: "analysis.degrees.bootstrap"},
         {key: "eigen.bootstrap",        span: "analysis.eigen.bootstrap"},
         {key: "eigen.lanczos",          span: "analysis.eigen.lanczos"},
         {key: "separation.bfs",         span: "analysis.separation"},
         {key: "centrality.betweenness", span: "analysis.centrality.betweenness"},
         {key: "centrality.pagerank",    span: "analysis.centrality.pagerank"}]
        | map({key: .key, value: stage_wall($m; .span)}) | from_entries;
    def block($m; $ref):
        stages($m) as $s | stages($ref) as $r |
        {
            stage_wall_micros: $s,
            total_wall_micros: $m.wall_total_micros,
            speedup_vs_serial:
                ($s | with_entries(.value =
                    (if .value > 0 then (($r[.key] / .value) * 1000 | round / 1000) else 1.0 end)))
        };
    {
        benchmark: "vnet-par thread scaling — repro --all --scale medium --bootstrap-reps 30",
        cores: $cores,
        note: ("Recorded at the medium tier (60k nodes / ~5.2M edges, docs/SCALING.md) on \($cores) core(s); single run per thread count, microseconds. On cores=1 every stage shows ~1.0x by construction — the deterministic decomposition (par.tasks, chunk grains) is core-count-independent; re-record on a multi-core host (delete this file and run scripts/bench_scale.sh) for real speedups."),
        memory: {
            synth_peak_arena_bytes: ($m1[0].gauges["graph.synth_peak_arena_bytes"] // 0),
            synth_csr_bytes: ($m1[0].gauges["graph.synth_csr_bytes"] // 0),
            dataset_csr_bytes: ($m1[0].gauges["graph.csr_bytes"] // 0),
            peak_rss_bytes: ($m1[0].gauges["mem.peak_rss_bytes"] // 0)
        },
        threads: {
            "1": block($m1[0]; $m1[0]),
            "2": block($m2[0]; $m1[0]),
            "4": block($m4[0]; $m1[0])
        }
    }' >"$out"

echo "wrote $out"
jq '{cores, memory, total: [.threads[] | .total_wall_micros]}' "$out"
