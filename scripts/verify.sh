#!/usr/bin/env bash
# Repo verification lanes, fastest first:
#
#   scripts/verify.sh fast    twittersim unit tests only (~seconds) —
#                             the fault-injection + crawler fast lane
#   scripts/verify.sh obs     observability lane: vnet-obs unit tests +
#                             the manifest-determinism golden tests
#   scripts/verify.sh par     parallelism lane: vnet-par unit tests + the
#                             cross-thread-count determinism battery
#   scripts/verify.sh         tier-1: release build + full quiet test suite
#   scripts/verify.sh full    tier-1 plus clippy and rustdoc, warnings denied
set -euo pipefail
cd "$(dirname "$0")/.."

lane="${1:-tier1}"

case "$lane" in
fast)
    cargo test -q -p vnet-twittersim
    ;;
obs)
    cargo test -q -p vnet-obs
    cargo test -q -p vnet-integration-tests --test obs_manifest
    ;;
par)
    cargo test -q -p vnet-par
    cargo test -q -p vnet-integration-tests --test par_determinism
    ;;
tier1)
    cargo build --release
    cargo test -q
    ;;
full)
    cargo build --release
    cargo test -q
    cargo clippy --workspace -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
    ;;
*)
    echo "usage: scripts/verify.sh [fast|obs|par|tier1|full]" >&2
    exit 2
    ;;
esac
