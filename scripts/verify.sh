#!/usr/bin/env bash
# Repo verification lanes, fastest first:
#
#   scripts/verify.sh fast    twittersim unit tests only (~seconds) —
#                             the fault-injection + crawler fast lane
#   scripts/verify.sh obs     observability lane: vnet-obs unit tests +
#                             the manifest-determinism golden tests
#   scripts/verify.sh obs-bench
#                             telemetry lane: the merge-determinism /
#                             Prometheus / watch / self-monitor battery,
#                             the obs-scoped clippy wall, and the
#                             obs_overhead regression gate (sharded
#                             telemetry must beat the global-mutex
#                             registry at >= 2 recording threads)
#   scripts/verify.sh par     parallelism lane: vnet-par unit tests + the
#                             cross-thread-count determinism battery
#   scripts/verify.sh serve   service lane: vnet-serve unit tests + the
#                             loopback wire-protocol, concurrency,
#                             admission-conformance and shard-isolation
#                             batteries, with the serve-scoped clippy wall
#   scripts/verify.sh graph-scale
#                             scaling lane: the StreamingBuilder unit +
#                             proptest battery, the streaming-vs-staged
#                             manifest-equivalence battery (including the
#                             release-profile medium-tier golden header),
#                             and the graph-scoped clippy wall
#   scripts/verify.sh temporal
#                             temporal lane: the vnet-temporal unit battery
#                             (overlay/counter/dynamic-PageRank bit-identity),
#                             the churn-replay + incremental-vs-scratch
#                             integration battery, the as_of wire battery
#                             (v1 envelope, deprecation note, churn oracle),
#                             and the temporal-scoped clippy wall
#   scripts/verify.sh serve-soak
#                             soak lane: the deterministic in-process
#                             open-loop soak test plus a small-rate
#                             serve_load run (seeded arrivals, two
#                             shards, admission on); fails on oracle
#                             divergence, accounting drift, undrained
#                             queues, or leaked connections
#   scripts/verify.sh sybil   adversarial lane: the vnet-detect unit
#                             battery, the planted-workload detection
#                             battery (recall >= 0.9 floor, thread-count
#                             byte-invariance, label round-trip), the
#                             detect wire battery, and the detect-scoped
#                             clippy wall
#   scripts/verify.sh         tier-1: release build + full quiet test suite
#   scripts/verify.sh full    tier-1 plus the soak and obs-bench lanes,
#                             clippy and rustdoc, warnings denied, and the compat
#                             grep lint (deprecated *_observed shims live
#                             only in compat.rs)
set -euo pipefail
cd "$(dirname "$0")/.."

lane="${1:-tier1}"

case "$lane" in
fast)
    cargo test -q -p vnet-twittersim
    ;;
obs)
    cargo test -q -p vnet-obs
    cargo test -q -p vnet-integration-tests --test obs_manifest
    ;;
obs-bench)
    cargo test -q -p vnet-integration-tests --test obs_telemetry
    # Metric recording sits on the request hot path; the same "no
    # unwrap, no lock across a wait" wall the serve crate holds applies
    # to the recording layer it calls into.
    cargo clippy -p vnet-obs --no-deps -- -D warnings -D clippy::await_holding_lock -D clippy::unwrap_used
    cargo run --release -q -p vnet-bench --bin obs_overhead -- --ops 200000 --check >/dev/null
    ;;
par)
    cargo test -q -p vnet-par
    cargo test -q -p vnet-integration-tests --test par_determinism
    ;;
serve)
    cargo test -q -p vnet-serve
    cargo test -q -p vnet-integration-tests --test serve_protocol
    cargo test -q -p vnet-integration-tests --test serve_concurrency
    cargo test -q -p vnet-integration-tests --test serve_admission
    cargo test -q -p vnet-integration-tests --test serve_shards
    # The service runs analyses on shared worker threads: a panic or a
    # lock held across a wait point takes down more than one request, so
    # the serve crate holds a stricter wall than the workspace default.
    cargo clippy -p vnet-serve --no-deps -- -D warnings -D clippy::await_holding_lock -D clippy::unwrap_used
    ;;
graph-scale)
    cargo test -q -p vnet-graph
    # Release profile: the --include-ignored run covers the ~5M-edge
    # medium-tier golden header, which is too slow for the debug tier.
    cargo test -q -p vnet-integration-tests --release --test graph_scale -- --include-ignored
    # The CSR arenas back every downstream kernel; construction code gets
    # the same no-unwrap wall as the serving hot path.
    cargo clippy -p vnet-graph --no-deps -- -D warnings -D clippy::unwrap_used
    ;;
temporal)
    cargo test -q -p vnet-temporal
    cargo test -q -p vnet-integration-tests --test temporal_replay
    cargo test -q -p vnet-integration-tests --test serve_asof
    # The overlay/counter kernels back the serve as_of path; they hold
    # the same no-unwrap wall as the rest of the request hot path.
    cargo clippy -p vnet-temporal --no-deps -- -D warnings -D clippy::unwrap_used
    ;;
serve-soak)
    cargo test -q -p vnet-integration-tests --test serve_soak
    cargo run --release -q -p vnet-bench --bin serve_load -- --rate 400 --requests 1000 --seed 7
    ;;
sybil)
    cargo test -q -p vnet-detect
    # The calibrated planted-recall floor (>= 0.9) and the byte-identical
    # ranking / P-R block across thread counts are asserted inside this
    # battery.
    cargo test -q -p vnet-integration-tests --test sybil_detection
    cargo test -q -p vnet-integration-tests --test serve_detect
    # Detection scores run on the serve request path; same wall as the
    # rest of the hot path.
    cargo clippy -p vnet-detect --no-deps -- -D warnings -D clippy::unwrap_used
    ;;
tier1)
    cargo build --release
    cargo test -q
    ;;
full)
    cargo build --release
    cargo test -q
    "$0" temporal
    "$0" serve-soak
    "$0" sybil
    "$0" obs-bench
    "$0" graph-scale
    cargo clippy --workspace -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
    # The 0.2 API contract: observed/plain function splits are dead and
    # the one-release compat shims were deleted with the v1 envelope —
    # no `#[deprecated]` item and no *_observed entrypoint may reappear
    # anywhere in crates/ (docs/API.md keeps the migration table).
    if grep -rn --include='*.rs' -E 'pub fn [a-z_0-9]*_observed' crates/; then
        echo "error: new *_observed public function in crates/" >&2
        echo "       (use an AnalysisCtx parameter instead; see docs/API.md)" >&2
        exit 1
    fi
    if grep -rn --include='*.rs' '#\[deprecated' crates/; then
        echo "error: deprecated shim reintroduced in crates/" >&2
        echo "       (delete the old name; see the migration table in docs/API.md)" >&2
        exit 1
    fi
    ;;
*)
    echo "usage: scripts/verify.sh [fast|obs|obs-bench|par|serve|graph-scale|temporal|serve-soak|sybil|tier1|full]" >&2
    exit 2
    ;;
esac
